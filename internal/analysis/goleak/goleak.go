// Package goleak enforces the goroutine-lifecycle discipline PR 2's
// anytime/degradation design rests on: in the packages that own
// long-lived work (internal/engine, internal/server,
// internal/sessionstore, internal/workload), every spawned goroutine
// must have a provable way to stop. A goroutine nobody joins and
// nothing can cancel outlives its request, holds its captures, and —
// the PR 2 incident class — keeps consuming engine time after the
// deadline already degraded the answer it was computing for.
//
// A `go` statement is accepted when the spawned body (a function
// literal, scanned directly, or a named function, resolved through its
// summary — local or imported via facts, closed over callees) is:
//
//   - joined: it calls Done on a sync.WaitGroup that some function in
//     the package Waits on (matched by field/package-var class, or by
//     source expression for function-local groups — the
//     `var wg sync.WaitGroup … go func() { defer wg.Done() }() …
//     wg.Wait()` shard pattern);
//   - ctx-cancellable: it observes a context.Context's Done() or
//     Err(), directly or through any function it calls (the summary
//     closure makes `go func() { runUser(ctx, …) }()` provable in one
//     hop, even when runUser lives in another package);
//   - stop-channel-cancellable: it receives from or selects on a
//     channel (field, package var, or local) that the package closes —
//     the server's janitor/Close pattern.
//
// Everything else needs `//subdex:goleak <reason>` on the go
// statement; an empty reason is itself a finding, which is how CI
// rejects undocumented suppressions.
//
// Summaries are computed for *every* package and exported as facts;
// findings are reported only in the scoped packages. The analysis is
// necessarily a may-analysis: it proves the existence of a stop
// mechanism, not that every path uses it.
package goleak

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"subdex/internal/analysis/framework"
)

// Analyzer is the goleak check.
var Analyzer = &framework.Analyzer{
	Name:      "goleak",
	Doc:       "goroutines in internal/{engine,server,sessionstore,workload} must be joined via WaitGroup, ctx-cancellable, or stopped by a channel the package closes",
	Run:       run,
	UsesFacts: true,
}

// scopedPkgs are the package-path suffixes where unaccounted
// goroutines are findings.
var scopedPkgs = []string{"internal/engine", "internal/server", "internal/sessionstore", "internal/workload"}

// ctxToken marks ctx-cancellability in the stops closure (it composes
// through calls exactly like a stop-channel class, so one Closure pass
// carries both).
const ctxToken = "ctx"

// localPrefix marks package-local (non-class) channel and WaitGroup
// keys; they are meaningful within one package and stripped from
// exported summaries.
const localPrefix = "local:"

// pkgFact is the per-package fact: closed per-function summaries and
// the channel classes the package closes.
type pkgFact struct {
	Funcs  map[string]funcSummary `json:"funcs,omitempty"`
	Closes []string               `json:"closes,omitempty"`
}

// funcSummary is what a spawner needs to know about a spawned
// function.
type funcSummary struct {
	// Stops holds the stop-channel classes the function receives from
	// or selects on, plus the ctx token when it observes a context —
	// closed over its callees.
	Stops []string `json:"stops,omitempty"`
	// Dones holds the WaitGroup keys the function directly calls Done
	// on (not closed: a join is only credible one level deep).
	Dones []string `json:"dones,omitempty"`
}

func run(pass *framework.Pass) error {
	external := make(map[string]funcSummary)
	factCloses := make(map[string]bool)
	for _, pf := range pass.ImportedFacts() {
		var fact pkgFact
		if err := json.Unmarshal(pf.Fact, &fact); err != nil {
			continue
		}
		for key, s := range fact.Funcs {
			external[key] = s
		}
		for _, c := range fact.Closes {
			factCloses[c] = true
		}
	}

	bodies := framework.FuncBodies(pass)

	// Pass 1: direct per-function properties, package-wide closes and
	// WaitGroup Waits.
	direct := make([]bodyProps, len(bodies))
	closes := make(map[string]bool)
	waits := make(map[string]bool)
	seeds := make(map[string][]string)
	calls := make(map[string][]string)
	for i, fb := range bodies {
		direct[i] = scanBodyProps(pass, fb.Body)
		for _, c := range direct[i].closes {
			closes[c] = true
		}
		for _, w := range direct[i].waits {
			waits[w] = true
		}
		if fb.Key != "" {
			seeds[fb.Key] = append([]string{}, direct[i].stops...)
			calls[fb.Key] = direct[i].calls
		}
	}
	for c := range factCloses {
		closes[c] = true
	}

	// Pass 2: close the stop/ctx relation over the call graph.
	stopsClosed := framework.Closure(seeds, calls, func(key string) []string {
		return external[key].Stops
	})
	summaryOf := func(key string) funcSummary {
		if stops, ok := stopsClosed[key]; ok {
			var dones []string
			for i, fb := range bodies {
				if fb.Key == key {
					dones = append(dones, direct[i].dones...)
				}
			}
			return funcSummary{Stops: stops, Dones: dones}
		}
		return external[key]
	}

	// Pass 3: judge every go statement in scoped packages.
	if inScope(pass.Path()) {
		for i := range bodies {
			for _, spawn := range direct[i].spawns {
				judgeSpawn(pass, bodies, direct, spawn, summaryOf, closes, waits)
			}
		}
	}

	// Export: closed summaries with local keys stripped, class closes.
	fact := pkgFact{}
	for key, stops := range stopsClosed {
		s := funcSummary{Stops: exported(stops)}
		for i, fb := range bodies {
			if fb.Key == key {
				s.Dones = append(s.Dones, exported(direct[i].dones)...)
			}
		}
		if len(s.Stops) > 0 || len(s.Dones) > 0 {
			if fact.Funcs == nil {
				fact.Funcs = make(map[string]funcSummary)
			}
			fact.Funcs[key] = s
		}
	}
	for c := range closes {
		if !strings.HasPrefix(c, localPrefix) {
			fact.Closes = append(fact.Closes, c)
		}
	}
	sort.Strings(fact.Closes)
	return pass.ExportFact(fact)
}

// judgeSpawn decides one go statement.
func judgeSpawn(pass *framework.Pass, bodies []framework.FuncBody, direct []bodyProps,
	spawn *ast.GoStmt, summaryOf func(string) funcSummary, closes, waits map[string]bool) {

	file := framework.FileOf(pass.Files, spawn.Pos())
	if reason, found := framework.Annotation(pass.Fset, file, spawn, "goleak"); found {
		if reason == "" {
			pass.Report(spawn.Pos(), "//subdex:goleak suppression without a reason")
		}
		return
	}

	var stops, dones []string
	resolved := false
	switch fun := ast.Unparen(spawn.Call.Fun).(type) {
	case *ast.FuncLit:
		// The literal's own body is one of bodies; merge its direct
		// properties with its callees' closed summaries.
		resolved = true
		for i, fb := range bodies {
			if fb.Lit == fun {
				stops = append(stops, direct[i].stops...)
				dones = append(dones, direct[i].dones...)
				for _, key := range direct[i].calls {
					s := summaryOf(key)
					stops = append(stops, s.Stops...)
					dones = append(dones, s.Dones...)
				}
				break
			}
		}
	default:
		if key := framework.CalleeKey(pass.TypesInfo, spawn.Call); key != "" {
			s := summaryOf(key)
			if len(s.Stops) > 0 || len(s.Dones) > 0 {
				resolved = true
				stops, dones = s.Stops, s.Dones
			}
		}
	}

	for _, s := range stops {
		if s == ctxToken || closes[s] {
			return // cancellable
		}
	}
	for _, d := range dones {
		if waits[d] {
			return // joined
		}
	}
	if resolved {
		pass.Report(spawn.Pos(), "goroutine has no join and no cancellation: not WaitGroup-joined, not ctx-cancellable, and no stop channel this package closes; join it or annotate //subdex:goleak <reason>")
	} else {
		pass.Report(spawn.Pos(), "goroutine target is not statically resolvable and declares no lifecycle; annotate //subdex:goleak <reason> or spawn a named function")
	}
}

// bodyProps are the directly observable lifecycle properties of one
// function body (never descending into nested literals).
type bodyProps struct {
	stops  []string // stop-channel classes/local keys received or selected on, plus ctxToken
	dones  []string // WaitGroup keys Done()'d (including deferred)
	waits  []string // WaitGroup keys Wait()'d
	closes []string // channel classes/local keys passed to close()
	calls  []string // resolvable callee keys
	spawns []*ast.GoStmt
}

func scanBodyProps(pass *framework.Pass, body *ast.BlockStmt) bodyProps {
	info := pass.TypesInfo
	var p bodyProps
	chanKey := func(e ast.Expr) string {
		if class := framework.ObjClass(info, e); class != "" {
			return class
		}
		return localPrefix + framework.ExprKey(e)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			p.spawns = append(p.spawns, x)
			// The spawned call's own execution is concurrent; its body
			// (literal) or summary (named) is judged at the spawn, not
			// merged into this function's properties. Arguments are
			// evaluated here, but lifecycle properties in arguments are
			// vanishingly rare; skip the subtree.
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.stops = append(p.stops, chanKey(x.X))
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					p.stops = append(p.stops, chanKey(x.X))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isB := info.Uses[id].(*types.Builtin); isB && id.Name == "close" && len(x.Args) == 1 {
					p.closes = append(p.closes, chanKey(x.Args[0]))
					return true
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if name, isWG := waitGroupMethod(info, sel); isWG {
					key := chanKey(sel.X)
					switch name {
					case "Done":
						p.dones = append(p.dones, key)
					case "Wait":
						p.waits = append(p.waits, key)
					}
					return true
				}
				if t := info.TypeOf(sel.X); t != nil && framework.NamedTypeIn(t, "context", "Context") {
					if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
						p.stops = append(p.stops, ctxToken)
						return true
					}
				}
			}
			if key := framework.CalleeKey(info, x); key != "" {
				p.calls = append(p.calls, key)
			}
		}
		return true
	})
	return p
}

// waitGroupMethod reports whether sel selects a sync.WaitGroup method
// and returns its name.
func waitGroupMethod(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return fn.Name(), true
}

// exported strips package-local keys from a summary value list.
func exported(keys []string) []string {
	var out []string
	for _, k := range keys {
		if !strings.HasPrefix(k, localPrefix) && k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func inScope(path string) bool {
	for _, suffix := range scopedPkgs {
		if framework.PathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
