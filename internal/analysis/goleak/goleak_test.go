package goleak_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/goleak"
)

func TestGoLeak(t *testing.T) {
	// Order matters: internal/server proves a literal cancellable
	// through pipeline's exported summary.
	analysistest.Run(t, "testdata", goleak.Analyzer,
		"pipeline", "internal/engine", "internal/server", "seeded/internal/workload", "tools")
}
