// Cross-package fact source: RunUntil observes its context, so a
// scoped package may spawn it (directly or from inside a literal) and
// goleak proves cancellability through this package's exported
// summary, never seeing the body again.
package pipeline

import "context"

// RunUntil pumps work until the context is done.
func RunUntil(ctx context.Context, work func() bool) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if !work() {
			return
		}
	}
}
