// Seeded-bug fixture reproducing the pre-PR 2 shape the anytime
// discipline replaced: the load runner spawned one goroutine per
// simulated user with no join and no deadline observation, so a run
// that hit its SLO window returned while its users kept hammering the
// server — load from a "finished" run polluting the next measurement.
// goleak must flag the spawn; the PR 2 fix (context plumbed into every
// user loop, WaitGroup join before results are read) is the accepted
// shape next to it.
package workload

import (
	"context"
	"sync"
)

func step(user int) bool { return user >= 0 }

// runPre2 is the incident: unjoined, uncancellable users.
func runPre2(users int) {
	for u := 0; u < users; u++ {
		go func(u int) { // want `goroutine has no join and no cancellation`
			for step(u) {
			}
		}(u)
	}
}

// runFixed is the shipped shape: ctx observed in the loop, join before
// returning.
func runFixed(ctx context.Context, users int) {
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for step(u) {
				if ctx.Err() != nil {
					return
				}
			}
		}(u)
	}
	wg.Wait()
}
