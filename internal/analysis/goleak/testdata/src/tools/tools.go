// Out-of-scope fixture: the same leak shape as the scoped packages,
// silent here — goleak's contract covers the packages that own
// long-lived serving work, not one-shot tooling.
package tools

func spin() {
	go func() {
		for {
		}
	}()
}
