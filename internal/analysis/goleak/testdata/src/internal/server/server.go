// Scoped fixture: the janitor/Close stop-channel pattern (accepted, a
// named method resolved through its local summary), ctx-cancellability
// proven through another package's fact (pipeline.RunUntil), and an
// unresolvable spawned function value (flagged).
package server

import (
	"context"
	"time"

	"pipeline"
)

type Server struct {
	stop chan struct{}
}

// Start spawns the janitor: goleak resolves the method's summary and
// finds its stop channel among this package's closes.
func (s *Server) Start() {
	go s.janitor()
}

func (s *Server) janitor() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
	}
}

// Close closes the stop channel, which is what legitimizes Start.
func (s *Server) Close() {
	close(s.stop)
}

// serveUsers proves cancellability through the pipeline package's
// fact: the literal calls RunUntil, whose exported summary observes
// ctx.
func (s *Server) serveUsers(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go func() {
			pipeline.RunUntil(ctx, func() bool { return true })
		}()
	}
}

// spawnValue launches a bare function value: nothing to resolve,
// nothing declared.
func (s *Server) spawnValue(fn func()) {
	go fn() // want `goroutine target is not statically resolvable`
}
