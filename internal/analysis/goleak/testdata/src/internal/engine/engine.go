// Scoped fixture: the shard-scan join pattern (accepted), the naked
// worker loop (flagged), and the suppression contract.
package engine

import "sync"

func work(n int) int { return n * 2 }

// accumulate is the shipped PR 3 shard pattern: local WaitGroup, Done
// in the literal, Wait in the spawner.
func accumulate(records []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(records))
	for i, r := range records {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			out[i] = work(r)
		}(i, r)
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

// leakyWorkers is the PR 2 incident class: nothing joins these, nothing
// can stop them.
func leakyWorkers(records []int) {
	for _, r := range records {
		go func(r int) { // want `goroutine has no join and no cancellation`
			for {
				work(r)
			}
		}(r)
	}
}

// acceptedForever is process-lifetime by declaration.
func acceptedForever() {
	//subdex:goleak metrics flusher is process-lifetime by design; it dies with the process, see DESIGN.md
	go func() {
		for {
			work(1)
		}
	}()
}

// suppressedBadly declares nothing.
func suppressedBadly() {
	//subdex:goleak
	go func() { // want `suppression without a reason`
		for {
			work(1)
		}
	}()
}
