package detorder_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "internal/engine", "other")
}
