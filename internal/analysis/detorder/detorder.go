// Package detorder guards the engine's bit-for-bit determinism
// invariant: PR 3's differential harness proves that sharded parallel
// accumulation equals the sequential scan exactly, and that proof is
// only as strong as the absence of map-iteration order in any path that
// feeds results. A `range` over a map in such a path reorders float
// additions (non-associative) and output sequences between runs.
//
// Within the determinism-critical packages (internal/engine and
// internal/ratingmap), non-test code may range over a map only when:
//
//   - it is the canonical collect-then-sort idiom — the loop body does
//     nothing but append keys (or values) to one slice, and that slice
//     is passed to sort.* / slices.Sort* later in the same function — or
//   - the statement is annotated `//subdex:orderinsensitive <reason>`
//     (trailing or on the line above), with a non-empty reason: the
//     author asserts the body commutes (pure max/min/int-sum reductions,
//     set membership fills) and says why.
//
// Everything else is an error.
package detorder

import (
	"go/ast"
	"go/types"

	"subdex/internal/analysis/framework"
)

// Analyzer is the detorder check.
var Analyzer = &framework.Analyzer{
	Name: "detorder",
	Doc:  "no map iteration in determinism-critical packages unless collect-and-sorted or annotated //subdex:orderinsensitive",
	Run:  run,
}

// criticalPkgs are the package-path suffixes under the determinism
// contract.
var criticalPkgs = []string{"internal/engine", "internal/ratingmap"}

func run(pass *framework.Pass) error {
	critical := false
	for _, suffix := range criticalPkgs {
		if framework.PathHasSuffix(pass.Path(), suffix) {
			critical = true
			break
		}
	}
	if !critical {
		return nil
	}

	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if framework.IsTestFile(pass.Fset, rng.Pos()) {
			return false
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMap(tv.Type) {
			return true
		}

		file := framework.FileOf(pass.Files, rng.Pos())
		if reason, found := framework.Annotation(pass.Fset, file, rng, "orderinsensitive"); found {
			if reason == "" {
				pass.Reportf(rng.Pos(), "//subdex:orderinsensitive needs a reason: say why this loop commutes")
			}
			return true
		}
		if isCollectThenSort(pass, rng, stack) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic and this package feeds bit-for-bit reproducible results; collect keys and sort them, or annotate //subdex:orderinsensitive <reason>")
		return true
	})
	return nil
}

// isMap reports whether t (possibly a named type) is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isCollectThenSort accepts the one blessed un-annotated shape: a body
// that only appends loop variables (or expressions over them) to a
// single slice, where that slice is sorted later in the same function.
func isCollectThenSort(pass *framework.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	target := collectTarget(rng.Body)
	if target == "" {
		return false
	}
	// Find the innermost enclosing function body and scan statements after
	// the range statement for a sort call on the target.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0 && fnBody == nil; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = f.Body
		case *ast.FuncLit:
			fnBody = f.Body
		}
	}
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if isSortCall(pass, call, target) {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// collectTarget returns the name of the slice the body appends to, or ""
// when the body is anything but `target = append(target, ...)`
// statements onto one identifier.
func collectTarget(body *ast.BlockStmt) string {
	target := ""
	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return ""
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return ""
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return ""
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return ""
		}
		first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return ""
		}
		if target != "" && target != lhs.Name {
			return "" // two different accumulation targets
		}
		target = lhs.Name
	}
	return target
}

// isSortCall reports whether call is sort.X(target, ...) or
// slices.SortX(target, ...).
func isSortCall(pass *framework.Pass, call *ast.CallExpr, target string) bool {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == target {
			return true
		}
	}
	return false
}
