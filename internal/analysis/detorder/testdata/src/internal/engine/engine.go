// Package engine (fixture) stands in for subdex/internal/engine — a
// determinism-critical package where detorder's map-range rules apply.
package engine

import "sort"

// bare iterates a map with no annotation and no sorting: flagged.
func bare(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

// annotatedTrailing carries a trailing annotation with a reason: accepted.
func annotatedTrailing(m map[int]int) int {
	max := 0
	for _, v := range m { //subdex:orderinsensitive integer max is commutative and associative
		if v > max {
			max = v
		}
	}
	return max
}

// annotatedAbove carries the annotation on the line above: accepted.
func annotatedAbove(m map[string]bool) int {
	n := 0
	//subdex:orderinsensitive pure count of set members; order cannot change a cardinality
	for range m {
		n++
	}
	return n
}

// annotatedEmpty has the marker but no reason: that is its own error.
func annotatedEmpty(m map[int]int) int {
	n := 0
	//subdex:orderinsensitive
	for range m { // want `needs a reason`
		n++
	}
	return n
}

// collectThenSort is the blessed idiom: append keys, sort, iterate sorted.
func collectThenSort(m map[int]float64) float64 {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// collectNoSort appends but never sorts: still nondeterministic output
// order, still flagged.
func collectNoSort(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// sliceRange is not a map range: no rule applies.
func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
