package engine

// Test files are exempt: tests may iterate maps freely (assertion
// helpers, table dumps) without annotations.
func testOnlyHelper(m map[int]int) int {
	n := 0
	for _, v := range m { // no want: test file
		n += v
	}
	return n
}
