// Package other is outside the determinism-critical set: detorder does
// not apply, map ranges are fine.
package other

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m { // no want: non-critical package
		n += v
	}
	return n
}
