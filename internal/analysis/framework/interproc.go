// Inter-procedural building blocks: the facts-based dataflow layer the
// PR 9 analyzers (lockorder, walcheck, goleak) compose cross-package
// checks from.
//
// The model mirrors `go vet`'s fact propagation. Each analyzer computes,
// per package, a summary for every declared function (which lock classes
// it may acquire, whether it propagates a Store error, whether it
// observes a cancellation signal) that is already *closed* over
// everything the package can see: its own call graph (by local
// fixpoint, so intra-package recursion and mutual calls converge) and
// the summaries imported from dependency facts. A dependent package
// then needs exactly one hop — look the callee's key up in the fact —
// never a whole-program graph. The known blind spot, shared with vet
// itself, is a cycle spread across sibling packages with no import
// relation between them; the lockorder fact therefore also carries the
// raw acquisition *edges* so any importer of both sides still sees the
// composed graph.
//
// Identity is textual because facts are JSON that crosses process
// boundaries (the vetx files): functions are keyed
// "pkgpath.Name" / "pkgpath.(Type).Name", and lock/channel/counter
// objects are keyed by *class* — "pkgpath.(Type).field" for a struct
// field, "pkgpath.name" for a package-level var — deliberately merging
// all instances of a type (every sessionEntry.mu is one class: lock
// *order* is a property of classes, not instances). Locals that never
// leave a function render as "" and are each analyzer's choice to
// track by expression key or ignore.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ---------------------------------------------------------------------------
// Function identity
// ---------------------------------------------------------------------------

// FuncKeyOf renders fn as a stable cross-package key:
// "pkgpath.Name" for package functions, "pkgpath.(Type).Name" for
// methods (pointer receivers and value receivers share a key; interface
// methods use the interface's name). Returns "" for builtins.
func FuncKeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		if named, okN := t.(*types.Named); okN {
			return CanonicalPath(fn.Pkg().Path()) + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		// Receiver is an unnamed type (embedded interface literal):
		// fall through to the package-function rendering, which is
		// still stable if imprecise.
	}
	return CanonicalPath(fn.Pkg().Path()) + "." + fn.Name()
}

// CalleeKey resolves call's static callee to its FuncKey, or "" for
// calls through function values, builtins, and conversions. Calls on
// interface values key to the *interface* method
// ("pkg.(Iface).Method") — the interface's defining package exports a
// merged summary under that key (see InterfaceMethodImpls).
func CalleeKey(info *types.Info, call *ast.CallExpr) string {
	return FuncKeyOf(CalleeFunc(info, call))
}

// FuncBody is one scannable function body in a package: either a
// declaration (Key non-empty, Decl set) or a function literal (Key "",
// Lit set). Literals are enumerated as independent bodies, however
// deeply nested, because flow scans never descend into them: a closure
// generally runs outside its lexical context (deferred, spawned,
// stored).
type FuncBody struct {
	Key  string
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	File *ast.File
}

// FuncBodies enumerates every function body in the pass's non-test
// files: each FuncDecl with a body, then each FuncLit (in source
// order, including literals nested inside other literals), each exactly
// once.
func FuncBodies(pass *Pass) []FuncBody {
	var out []FuncBody
	for _, file := range pass.Files {
		if IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					key := ""
					if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
						key = FuncKeyOf(obj)
					}
					out = append(out, FuncBody{Key: key, Decl: fn, Body: fn.Body, File: file})
				}
			case *ast.FuncLit:
				out = append(out, FuncBody{Lit: fn, Body: fn.Body, File: file})
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Object classes
// ---------------------------------------------------------------------------

// ObjClass renders the object behind expr (the receiver of a Lock call,
// the operand of close(), the target of Counter registration) as a
// cross-package class:
//
//	fs.swapMu      → "subdex/internal/sessionstore.(FileStore).swapMu"
//	fs.st.mu       → "subdex/internal/sessionstore.(memState).mu"
//	pkgLevelMu     → "pkg.pkgLevelMu"
//	localVar       → ""
//
// Field classes name the *selection's* receiver type, so a field
// promoted from an embedded struct is keyed by the outer type — stable
// for a given source idiom, which is all comparison needs. All
// instances of a type share one class by design.
func ObjClass(info *types.Info, expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() { // package-level var
			return CanonicalPath(v.Pkg().Path()) + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok {
			// Qualified identifier pkg.Var.
			if obj, okO := info.Uses[x.Sel].(*types.Var); okO && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return CanonicalPath(obj.Pkg().Path()) + "." + obj.Name()
			}
			return ""
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !v.IsField() || v.Pkg() == nil {
			return ""
		}
		t := sel.Recv()
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		named, okN := t.(*types.Named)
		if !okN {
			return ""
		}
		return CanonicalPath(named.Obj().Pkg().Path()) + ".(" + named.Obj().Name() + ")." + v.Name()
	}
	return ""
}

// FieldClassInLiteral renders the class of a field being initialized in
// a composite literal: for the key ident of `&Server{walFailures: …}`
// it returns "pkg.(Server).walFailures". lit is the enclosing
// CompositeLit, key the field name ident.
func FieldClassInLiteral(info *types.Info, lit *ast.CompositeLit, key *ast.Ident) string {
	tv, ok := info.Types[lit]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj().Pkg() == nil {
		return ""
	}
	return CanonicalPath(named.Obj().Pkg().Path()) + ".(" + named.Obj().Name() + ")." + key.Name
}

// ---------------------------------------------------------------------------
// Lock/call flow scan
// ---------------------------------------------------------------------------

// FlowKind discriminates FlowEvents.
type FlowKind int

const (
	// FlowAcquire is a blocking Lock/RLock on a class-renderable mutex.
	FlowAcquire FlowKind = iota
	// FlowTryAcquire is TryLock/TryRLock: it joins the held set (a lock
	// held is held, however acquired) but can never *block*, so it must
	// not become the target of a deadlock edge.
	FlowTryAcquire
	// FlowCall is a statically resolvable call (Callee/Key set).
	FlowCall
)

// A FlowEvent is one acquisition or call observed by ScanFlow, with the
// set of lock classes held when control reaches it.
type FlowEvent struct {
	Kind   FlowKind
	Class  string      // lock class, for acquires
	Callee *types.Func // for FlowCall
	Key    string      // FuncKeyOf(Callee), for FlowCall
	Call   *ast.CallExpr
	Held   []string // sorted lock classes held before this event
	Pos    token.Pos
}

// ScanFlow walks body in statement order, tracking which mutex classes
// are held, and emits an event for every blocking/try acquisition of a
// class-renderable mutex and every statically resolvable call. The
// control-flow approximations are lockblock's, shared deliberately so
// the two analyzers agree on what "held" means: branch bodies inherit
// (a clone of) the state at entry; an unlock inside a branch does not
// clear the fall-through state; `defer x.Unlock()` means held to
// function end; deferred and spawned calls and nested function literals
// are not descended into (literals are scanned as their own FuncBody).
// Locks that render to no class (locals) are invisible here — local
// lock discipline is lockblock's intraprocedural job.
func ScanFlow(info *types.Info, body *ast.BlockStmt, emit func(FlowEvent)) {
	fs := &flowScanner{info: info, emit: emit}
	fs.block(body, map[string]int{})
}

type flowScanner struct {
	info *types.Info
	emit func(FlowEvent)
}

func heldList(held map[string]int) []string {
	out := make([]string, 0, len(held))
	for c, n := range held {
		if n > 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func cloneHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for c, n := range held {
		out[c] = n
	}
	return out
}

func (fs *flowScanner) block(body *ast.BlockStmt, held map[string]int) {
	for _, stmt := range body.List {
		fs.stmt(stmt, held)
	}
}

func (fs *flowScanner) stmt(stmt ast.Stmt, held map[string]int) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		fs.expr(s.X, held)
	case *ast.SendStmt:
		fs.expr(s.Chan, held)
		fs.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fs.expr(e, held)
		}
	case *ast.IncDecStmt:
		fs.expr(s.X, held)
	case *ast.DeferStmt, *ast.GoStmt:
		// defer x.Unlock() = held to end (no state change); other
		// deferred calls and spawned goroutines run outside this flow.
	case *ast.IfStmt:
		if s.Init != nil {
			fs.stmt(s.Init, held)
		}
		fs.expr(s.Cond, held)
		fs.block(s.Body, cloneHeld(held))
		if s.Else != nil {
			fs.stmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		fs.block(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			fs.stmt(s.Init, held)
		}
		if s.Cond != nil {
			fs.expr(s.Cond, held)
		}
		fs.block(s.Body, cloneHeld(held))
	case *ast.RangeStmt:
		fs.expr(s.X, held)
		fs.block(s.Body, cloneHeld(held))
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := cloneHeld(held)
				if cc.Comm != nil {
					fs.stmt(cc.Comm, inner)
				}
				for _, cs := range cc.Body {
					fs.stmt(cs, inner)
				}
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init, held)
		}
		if s.Tag != nil {
			fs.expr(s.Tag, held)
		}
		fs.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		fs.caseBodies(s.Body, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fs.expr(e, held)
		}
	case *ast.LabeledStmt:
		fs.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						fs.expr(e, held)
					}
				}
			}
		}
	}
}

func (fs *flowScanner) caseBodies(body *ast.BlockStmt, held map[string]int) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			inner := cloneHeld(held)
			for _, cs := range cc.Body {
				fs.stmt(cs, inner)
			}
		}
	}
}

// expr inspects e in traversal order, applying mutex calls to held and
// emitting events. Nested function literals are opaque.
func (fs *flowScanner) expr(e ast.Expr, held map[string]int) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, okS := ast.Unparen(call.Fun).(*ast.SelectorExpr); okS {
			if method, isMutex := MutexMethod(fs.info, sel); isMutex {
				class := ObjClass(fs.info, sel.X)
				switch method {
				case "Lock", "RLock":
					if class != "" {
						fs.emit(FlowEvent{Kind: FlowAcquire, Class: class, Call: call,
							Held: heldList(held), Pos: call.Pos()})
						held[class]++
					}
				case "TryLock", "TryRLock":
					if class != "" {
						fs.emit(FlowEvent{Kind: FlowTryAcquire, Class: class, Call: call,
							Held: heldList(held), Pos: call.Pos()})
						held[class]++
					}
				case "Unlock", "RUnlock":
					if class != "" && held[class] > 0 {
						held[class]--
					}
				}
				return true
			}
		}
		if fn := CalleeFunc(fs.info, call); fn != nil {
			fs.emit(FlowEvent{Kind: FlowCall, Callee: fn, Key: FuncKeyOf(fn), Call: call,
				Held: heldList(held), Pos: call.Pos()})
		}
		return true
	})
}

// ExprKey renders an expression as a stable source-path key: "s.mu",
// "wg", "shards[...]". Package-local only (two functions' local "wg"
// collide) — use ObjClass for cross-package identity and ExprKey when
// a local object must be matched within one package.
func ExprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return ExprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ExprKey(x.X) + "[...]"
	default:
		return "<expr>"
	}
}

// MutexMethod reports whether sel selects a method on sync.Mutex /
// sync.RWMutex (directly or via embedding) and returns the method name.
func MutexMethod(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN {
		return "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false
	}
	return fn.Name(), true
}

// ---------------------------------------------------------------------------
// Interface dispatch and summary closure
// ---------------------------------------------------------------------------

// InterfaceMethodImpls maps, for every interface type defined at
// package scope in pkg, each interface-method key
// ("pkg.(Iface).Method") to the keys of the same-signature methods on
// the concrete package-scope types that implement the interface.
// Analyzers use it to export a merged summary under the interface
// method's key, which is what CalleeKey yields at dynamic call sites —
// so a caller of sessionstore.Store.Get composes with the union of
// MemStore.Get and FileStore.Get without ever seeing the concrete
// types. Implementations in *other* packages are invisible (vet's
// one-hop fact model); SubDEx keeps Store implementations beside the
// interface for exactly this reason.
func InterfaceMethodImpls(pkg *types.Package) map[string][]string {
	scope := pkg.Scope()
	var ifaces, concretes []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if types.IsInterface(tn.Type()) {
			ifaces = append(ifaces, tn)
		} else {
			concretes = append(concretes, tn)
		}
	}
	out := make(map[string][]string)
	for _, itn := range ifaces {
		iface, ok := itn.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, ctn := range concretes {
			impl := ctn.Type()
			ptr := types.NewPointer(impl)
			if !types.Implements(impl, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, pkg, m.Name())
				implFn, okF := obj.(*types.Func)
				if !okF {
					continue
				}
				ikey := CanonicalPath(pkg.Path()) + ".(" + itn.Name() + ")." + m.Name()
				out[ikey] = append(out[ikey], FuncKeyOf(implFn))
			}
		}
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// Closure computes, for every function key in seeds ∪ calls, the
// transitive union of seed values reachable through the call relation:
// result[f] = seeds[f] ∪ ⋃ result[g] for g ∈ calls[f]. Callees outside
// the local domain resolve through external (typically a lookup into
// imported facts, already closed; nil means "unknown, contributes
// nothing"). Local cycles converge by fixpoint iteration; the result's
// value slices are sorted and deduplicated.
func Closure(seeds map[string][]string, calls map[string][]string, external func(key string) []string) map[string][]string {
	result := make(map[string]map[string]bool)
	local := func(key string) bool {
		_, inSeeds := seeds[key]
		_, inCalls := calls[key]
		return inSeeds || inCalls
	}
	for key, vals := range seeds {
		set := make(map[string]bool, len(vals))
		for _, v := range vals {
			set[v] = true
		}
		result[key] = set
	}
	for key := range calls {
		if result[key] == nil {
			result[key] = make(map[string]bool)
		}
	}
	// External contributions are stable; fold them in once.
	if external != nil {
		for key, callees := range calls {
			for _, g := range callees {
				if local(g) {
					continue
				}
				for _, v := range external(g) {
					result[key][v] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			dst := result[key]
			for _, g := range callees {
				if !local(g) {
					continue
				}
				for v := range result[g] {
					if !dst[v] {
						dst[v] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[string][]string, len(result))
	for key, set := range result {
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[key] = vals
	}
	return out
}
