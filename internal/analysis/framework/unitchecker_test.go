package framework

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestParseMainArgs pins the personality dispatch: which of subdexvet's
// modes each argument vector selects, and what survives as cfg/patterns.
func TestParseMainArgs(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		mode     mainMode
		cfgFile  string
		patterns []string
	}{
		{name: "no args is standalone", args: nil, mode: modeStandalone},
		{name: "patterns are standalone",
			args: []string{"./...", "./cmd/subdexvet"},
			mode: modeStandalone, patterns: []string{"./...", "./cmd/subdexvet"}},
		{name: "cfg selects unitchecker",
			args: []string{"/tmp/work/b012/vet.cfg"},
			mode: modeUnitchecker, cfgFile: "/tmp/work/b012/vet.cfg"},
		{name: "V=full wins even after a cfg",
			args: []string{"/tmp/work/b012/vet.cfg", "-V=full"},
			mode: modeVersion},
		{name: "double-dash V=full",
			args: []string{"--V=full"},
			mode: modeVersion},
		{name: "flags handshake",
			args: []string{"-flags"},
			mode: modeFlags},
		{name: "help",
			args: []string{"help"},
			mode: modeHelp},
		{name: "forwarded analyzer toggles are tolerated and dropped",
			args: []string{"-unreachable=false", "./..."},
			mode: modeStandalone, patterns: []string{"./..."}},
		{name: "toggle plus cfg stays unitchecker",
			args: []string{"-lockorder=true", "vet.cfg"},
			mode: modeUnitchecker, cfgFile: "vet.cfg"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mode, cfgFile, patterns := parseMainArgs(tt.args)
			if mode != tt.mode || cfgFile != tt.cfgFile || !reflect.DeepEqual(patterns, tt.patterns) {
				t.Errorf("parseMainArgs(%q) = (%v, %q, %q), want (%v, %q, %q)",
					tt.args, mode, cfgFile, patterns, tt.mode, tt.cfgFile, tt.patterns)
			}
		})
	}
}

// TestVersionLine pins the -V=full handshake contract: one line of the
// form cmd/go accepts ("name version ..."), carrying a hex self-hash,
// and deterministic across calls — the whole line feeds the vet
// action's build-cache key, so any instability would defeat caching.
func TestVersionLine(t *testing.T) {
	line := versionLine()
	re := regexp.MustCompile(`^subdexvet version \S+ buildID=[0-9a-f]{16}$`)
	if !re.MatchString(line) {
		t.Errorf("versionLine() = %q, want match for %v", line, re)
	}
	if again := versionLine(); again != line {
		t.Errorf("versionLine not deterministic: %q then %q", line, again)
	}
}

// TestFlagsJSON pins the -flags handshake: a JSON array with one
// boolean flag definition per analyzer, in registration order.
func TestFlagsJSON(t *testing.T) {
	analyzers := []*Analyzer{{Name: "lockorder"}, {Name: "walcheck"}}
	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(flagsJSON(analyzers), &defs); err != nil {
		t.Fatalf("flagsJSON is not valid JSON: %v", err)
	}
	if len(defs) != 2 || defs[0].Name != "lockorder" || defs[1].Name != "walcheck" {
		t.Fatalf("flag defs = %+v, want lockorder then walcheck", defs)
	}
	for _, d := range defs {
		if !d.Bool {
			t.Errorf("flag %s not boolean: cmd/go forwards -%s=false style toggles", d.Name, d.Name)
		}
	}
}

// TestReadVetConfig pins vet.cfg parsing against the shapes cmd/go
// actually writes: all consumed fields decode, unknown fields are
// ignored (toolchains add fields), and malformed input is an error,
// not a silent empty config.
func TestReadVetConfig(t *testing.T) {
	tests := []struct {
		name    string
		json    string
		wantErr bool
		check   func(t *testing.T, cfg *vetConfig)
	}{
		{
			name: "full config",
			json: `{
				"ID": "subdex/internal/server",
				"Compiler": "gc",
				"Dir": "/src/subdex/internal/server",
				"ImportPath": "subdex/internal/server",
				"GoFiles": ["/src/subdex/internal/server/server.go"],
				"ImportMap": {"subdex/internal/core": "subdex/internal/core"},
				"PackageFile": {"subdex/internal/core": "/cache/aa/core.a"},
				"PackageVetx": {"subdex/internal/core": "/cache/bb/core.vetx"},
				"VetxOnly": false,
				"VetxOutput": "/cache/cc/server.vetx",
				"GoVersion": "go1.24",
				"SucceedOnTypecheckFailure": false
			}`,
			check: func(t *testing.T, cfg *vetConfig) {
				if cfg.ImportPath != "subdex/internal/server" {
					t.Errorf("ImportPath = %q", cfg.ImportPath)
				}
				if len(cfg.GoFiles) != 1 || !strings.HasSuffix(cfg.GoFiles[0], "server.go") {
					t.Errorf("GoFiles = %q", cfg.GoFiles)
				}
				if cfg.PackageVetx["subdex/internal/core"] != "/cache/bb/core.vetx" {
					t.Errorf("PackageVetx = %q", cfg.PackageVetx)
				}
				if cfg.VetxOutput != "/cache/cc/server.vetx" {
					t.Errorf("VetxOutput = %q", cfg.VetxOutput)
				}
			},
		},
		{
			name: "unknown fields ignored",
			json: `{"ImportPath": "p", "FutureToolchainField": {"nested": [1, 2]}}`,
			check: func(t *testing.T, cfg *vetConfig) {
				if cfg.ImportPath != "p" {
					t.Errorf("ImportPath = %q", cfg.ImportPath)
				}
			},
		},
		{
			name: "succeed-on-typecheck-failure flag",
			json: `{"ImportPath": "p", "SucceedOnTypecheckFailure": true}`,
			check: func(t *testing.T, cfg *vetConfig) {
				if !cfg.SucceedOnTypecheckFailure {
					t.Error("SucceedOnTypecheckFailure not decoded")
				}
			},
		},
		{name: "malformed JSON", json: `{"ImportPath": `, wantErr: true},
		{name: "not an object", json: `[1,2,3]`, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "vet.cfg")
			if err := os.WriteFile(path, []byte(tt.json), 0o666); err != nil {
				t.Fatal(err)
			}
			cfg, err := readVetConfig(path)
			if (err != nil) != tt.wantErr {
				t.Fatalf("readVetConfig error = %v, wantErr %t", err, tt.wantErr)
			}
			if err == nil && tt.check != nil {
				tt.check(t, cfg)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		if _, err := readVetConfig(filepath.Join(t.TempDir(), "absent.cfg")); err == nil {
			t.Error("readVetConfig on a missing file succeeded")
		}
	})
}

// TestVetxFactRoundTrip pins the fact plumbing that makes the
// inter-procedural analyzers work under `go vet -vettool`: facts a
// package exports through writeVetx come back intact through
// importVetxFacts in a dependent's invocation, multiple dependencies
// merge, and damaged vetx files degrade to "no facts", never an error.
func TestVetxFactRoundTrip(t *testing.T) {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	storeA := FactStore{
		"lockorder": {"subdex/internal/sessionstore": raw(`{"Edges":[{"From":"a","To":"b"}]}`)},
		"walcheck":  {"subdex/internal/sessionstore": raw(`{"Mutations":["x.Create"]}`)},
	}
	storeB := FactStore{
		"lockorder": {"subdex/internal/server": raw(`{"Ranks":{"m":10}}`)},
	}

	write := func(t *testing.T, dir, name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mustJSON := func(t *testing.T, v any) []byte {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	tests := []struct {
		name string
		vetx func(t *testing.T, dir string) map[string]string // PackageVetx
		want FactStore
	}{
		{
			name: "single dependency round-trips",
			vetx: func(t *testing.T, dir string) map[string]string {
				return map[string]string{"dep": write(t, dir, "a.vetx", mustJSON(t, storeA))}
			},
			want: storeA,
		},
		{
			name: "two dependencies merge",
			vetx: func(t *testing.T, dir string) map[string]string {
				return map[string]string{
					"depA": write(t, dir, "a.vetx", mustJSON(t, storeA)),
					"depB": write(t, dir, "b.vetx", mustJSON(t, storeB)),
				}
			},
			want: FactStore{
				"lockorder": {
					"subdex/internal/sessionstore": storeA["lockorder"]["subdex/internal/sessionstore"],
					"subdex/internal/server":       storeB["lockorder"]["subdex/internal/server"],
				},
				"walcheck": storeA["walcheck"],
			},
		},
		{
			name: "malformed vetx skipped, good one kept",
			vetx: func(t *testing.T, dir string) map[string]string {
				return map[string]string{
					"bad":  write(t, dir, "bad.vetx", []byte("not json")),
					"good": write(t, dir, "a.vetx", mustJSON(t, storeA)),
				}
			},
			want: storeA,
		},
		{
			name: "empty and missing vetx skipped",
			vetx: func(t *testing.T, dir string) map[string]string {
				return map[string]string{
					"empty":   write(t, dir, "empty.vetx", nil),
					"missing": filepath.Join(dir, "never-written.vetx"),
				}
			},
			want: FactStore{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := t.TempDir()
			got := importVetxFacts(&vetConfig{PackageVetx: tt.vetx(t, dir)})
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("importVetxFacts = %v, want %v", got, tt.want)
			}
		})
	}

	t.Run("writeVetx then import is identity", func(t *testing.T) {
		dir := t.TempDir()
		out := filepath.Join(dir, "self.vetx")
		writeVetx(&vetConfig{VetxOutput: out}, storeA)
		got := importVetxFacts(&vetConfig{PackageVetx: map[string]string{"self": out}})
		// Compare semantically: RawMessage bytes may be re-marshalled.
		if len(got) != len(storeA) {
			t.Fatalf("round-trip lost analyzers: %v vs %v", got, storeA)
		}
		for name, byPkg := range storeA {
			for pkg, want := range byPkg {
				var wv, gv any
				if err := json.Unmarshal(want, &wv); err != nil {
					t.Fatal(err)
				}
				if err := json.Unmarshal(got[name][pkg], &gv); err != nil {
					t.Fatalf("%s/%s did not survive: %v", name, pkg, err)
				}
				if !reflect.DeepEqual(wv, gv) {
					t.Errorf("%s/%s = %v, want %v", name, pkg, gv, wv)
				}
			}
		}
	})

	t.Run("no VetxOutput writes nothing", func(t *testing.T) {
		dir := t.TempDir()
		writeVetx(&vetConfig{VetxOutput: ""}, storeA)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("writeVetx with no output path created %v", entries)
		}
	})
}
