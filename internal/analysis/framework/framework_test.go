package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestCanonicalPath(t *testing.T) {
	cases := map[string]string{
		"subdex/internal/engine":                               "subdex/internal/engine",
		"subdex/internal/engine.test":                          "subdex/internal/engine",
		"subdex/internal/engine [subdex/internal/engine.test]": "subdex/internal/engine",
	}
	for in, want := range cases {
		if got := CanonicalPath(in); got != want {
			t.Errorf("CanonicalPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"subdex/internal/obs", "internal/obs", true},
		{"internal/obs", "internal/obs", true},
		{"obs", "internal/obs", false},
		{"subdex/internal/observability", "internal/obs", false},
		{"x/myinternal/obs", "internal/obs", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

// TestAnnotation pins the two accepted comment placements (line above,
// trailing), the empty-reason form, and the absent case.
func TestAnnotation(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	//subdex:orderinsensitive pure count
	for range m {
	}
	for range m { //subdex:orderinsensitive trailing reason
	}
	for range m { //subdex:orderinsensitive
	}
	for range m {
	}
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var loops []*ast.RangeStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			loops = append(loops, r)
		}
		return true
	})
	if len(loops) != 4 {
		t.Fatalf("expected 4 range statements, got %d", len(loops))
	}
	want := []struct {
		reason string
		found  bool
	}{
		{"pure count", true},
		{"trailing reason", true},
		{"", true},
		{"", false},
	}
	for i, w := range want {
		reason, found := Annotation(fset, file, loops[i], "orderinsensitive")
		if reason != w.reason || found != w.found {
			t.Errorf("loop %d: Annotation = (%q, %v), want (%q, %v)", i, reason, found, w.reason, w.found)
		}
	}
}
