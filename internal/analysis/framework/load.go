package framework

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (in dir, "" = cwd) with
// `go list -deps -export`, parses and type-checks every non-standard
// package from source — imports are satisfied from the build cache's
// export data, so loading needs no network and no GOPATH — and returns
// the pattern-matched packages in dependency order (a package's
// in-module imports precede it), ready for Analyze.
//
// This is the standalone driver's loader; the vet -vettool path instead
// receives file lists and export-data locations from cmd/go via the
// vet.cfg protocol (see unitchecker.go).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listPackage)
	var order []*listPackage // go list -deps emits dependencies first
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %v", err)
		}
		p := lp
		byPath[p.ImportPath] = &p
		order = append(order, &p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	var pkgs []*Package
	for _, lp := range order {
		if lp.Standard {
			continue // only module code is analyzed
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.DepOnly {
			// Not pattern-matched: its exported API reaches dependents via
			// export data; no need to re-check its source.
			continue
		}
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: importMapper{imp: imp, importMap: lp.ImportMap},
		Error:    func(error) {}, // collect just the first via Check's return
	}
	tpkg, err := conf.Check(CanonicalPath(lp.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:      CanonicalPath(lp.ImportPath),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// importMapper applies a source-path → canonical-path import map (as
// produced by go list and the vet.cfg protocol for vendoring and test
// variants) in front of an export-data importer.
type importMapper struct {
	imp       types.Importer
	importMap map[string]string
}

func (m importMapper) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}
