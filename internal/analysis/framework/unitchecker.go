package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors cmd/go's per-package vet configuration (the JSON it
// writes to $WORK/.../vet.cfg before invoking the -vettool). Only the
// fields this driver consumes are declared; unknown fields are ignored
// by encoding/json, keeping us compatible across toolchain versions.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string
	GoVersion    string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by cmd/subdexvet's two personalities:
//
//	subdexvet [packages]         standalone: load via go list, report, exit 2 on findings
//	go vet -vettool=subdexvet    unitchecker: cmd/go invokes it once per package
//	                             with a generated *.cfg file (plus -V=full once,
//	                             to derive a build-cache key from the tool binary)
//
// It never returns.
func Main(analyzers []*Analyzer) {
	mode, cfgFile, patterns := parseMainArgs(os.Args[1:])
	switch mode {
	case modeVersion:
		fmt.Println(versionLine())
		os.Exit(0)
	case modeFlags:
		printFlagsJSON(analyzers)
		os.Exit(0)
	case modeHelp:
		printHelp(analyzers)
		os.Exit(0)
	case modeUnitchecker:
		os.Exit(runUnitchecker(cfgFile, analyzers))
	}
	os.Exit(runStandalone(patterns, analyzers))
}

// mainMode is which of subdexvet's personalities one invocation's
// arguments select.
type mainMode int

const (
	modeStandalone  mainMode = iota // subdexvet [packages]
	modeUnitchecker                 // go vet passes a generated *.cfg
	modeVersion                     // -V=full: cmd/go's cache-key handshake
	modeFlags                       // -flags: cmd/go's flag interrogation
	modeHelp
)

// parseMainArgs classifies an argument vector without executing
// anything, so the dispatch table is testable. A handshake flag wins
// over everything else (cmd/go sends it alone, but first-match keeps
// the contract obvious); otherwise a *.cfg argument selects the
// unitchecker personality. Other dash-flags are tolerated and dropped:
// cmd/go may forward analyzer enable/disable flags (e.g.
// -unreachable=false under `go test`), and this suite has no
// per-analyzer toggles — invariants are not optional.
func parseMainArgs(args []string) (mode mainMode, cfgFile string, patterns []string) {
	mode = modeStandalone
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return modeVersion, "", nil
		case arg == "-flags" || arg == "--flags":
			return modeFlags, "", nil
		case arg == "help" || arg == "-help" || arg == "--help" || arg == "-h":
			return modeHelp, "", nil
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
			mode = modeUnitchecker
		case strings.HasPrefix(arg, "-"):
		default:
			patterns = append(patterns, arg)
		}
	}
	return mode, cfgFile, patterns
}

// versionLine is the -V=full response. cmd/go hashes the whole line
// into the vet action's build-cache key, so it must be deterministic
// for a given binary and change whenever the binary does — hence the
// self-hash, not a hardcoded version.
func versionLine() string {
	return fmt.Sprintf("subdexvet version devel buildID=%s", selfID())
}

// selfID hashes the running binary so cmd/go's build cache invalidates
// vet results whenever the tool is rebuilt.
func selfID() string {
	h := fnv.New64a()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// printFlagsJSON emits the flag-definition array cmd/go's `go vet
// -vettool` handshake expects on `tool -flags`.
func printFlagsJSON(analyzers []*Analyzer) {
	fmt.Println(string(flagsJSON(analyzers)))
}

func flagsJSON(analyzers []*Analyzer) []byte {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := make([]flagDef, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analysis (default, and recommended: always on)"})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		out = []byte("[]")
	}
	return out
}

func printHelp(analyzers []*Analyzer) {
	fmt.Println("subdexvet: SubDEx project-invariant analyzers")
	fmt.Println()
	fmt.Println("usage: subdexvet [packages]                  (standalone)")
	fmt.Println("       go vet -vettool=$(which subdexvet) ./...")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("%s:\n%s\n\n", a.Name, strings.TrimSpace(a.Doc))
	}
}

// runStandalone analyzes the pattern-matched packages of the module in
// the current directory. Findings go to stderr; the exit code is 2 when
// there are findings, 1 on load errors, 0 when clean (the same contract
// as x/tools' checkers).
func runStandalone(patterns []string, analyzers []*Analyzer) int {
	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexvet:", err)
		return 1
	}
	store := make(FactStore)
	exit := 0
	for _, pkg := range pkgs {
		diags, err := Analyze(pkg, analyzers, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "subdexvet:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			exit = 2
		}
	}
	return exit
}

// runUnitchecker handles one cmd/go vet invocation: parse the vet.cfg,
// type-check the package against the export data cmd/go already built,
// run the analyzers with facts imported from dependency vetx files, and
// write this package's facts to VetxOutput for dependents.
func runUnitchecker(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexvet:", err)
		return 1
	}

	pkg, err := loadFromVetConfig(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go sets this for packages it knows won't type-check under
			// a unit checker (see golang/go#18395); stay silent and green.
			writeVetx(cfg, make(FactStore))
			return 0
		}
		fmt.Fprintln(os.Stderr, "subdexvet:", err)
		return 1
	}

	store := importVetxFacts(cfg)
	diags, err := Analyze(pkg, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexvet:", err)
		return 1
	}
	writeVetx(cfg, store)
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}

// loadFromVetConfig parses and type-checks the vet.cfg's package.
// Imports resolve through ImportMap into the PackageFile export-data
// map, exactly as the compiler resolved them.
func loadFromVetConfig(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	conf := types.Config{
		Importer:  importMapper{imp: imp, importMap: cfg.ImportMap},
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	path := CanonicalPath(cfg.ImportPath)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// importVetxFacts merges the fact stores of dependency packages (the
// vetx files cmd/go recorded from their earlier vet runs). Missing or
// malformed files are skipped: facts are an enhancement, not a
// correctness dependency, and cmd/go only guarantees them along import
// edges it chose to vet.
func importVetxFacts(cfg *vetConfig) FactStore {
	store := make(FactStore)
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var dep FactStore
		if json.Unmarshal(data, &dep) != nil {
			continue
		}
		store.Merge(dep)
	}
	return store
}

// writeVetx persists the fact store for dependent packages. cmd/go
// treats a missing vetx file as "nothing cached", so failures degrade
// performance, never correctness.
func writeVetx(cfg *vetConfig, store FactStore) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := json.Marshal(store)
	if err != nil {
		data = []byte("{}")
	}
	_ = os.WriteFile(cfg.VetxOutput, data, 0o666)
}
