// Package framework is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/types and go/importer packages.
//
// The real x/tools module is not vendored into this repository (SubDEx
// carries zero third-party dependencies by policy), so this package
// provides the same three-legged contract the upstream framework does:
//
//   - Analyzer / Pass / Diagnostic: an analyzer receives one type-checked
//     package per Pass and reports findings through Pass.Report.
//   - Package facts: an analyzer may export one JSON-serializable fact
//     blob per package and observe the facts of previously analyzed
//     packages, enabling cross-package invariants (obsmetrics uses this
//     to catch a metric name re-registered with different help text in a
//     different package).
//   - Two drivers sharing this contract: a standalone driver (load.go)
//     that loads packages via `go list -export`, and a unitchecker-style
//     driver (unitchecker.go) speaking `go vet -vettool`'s vet.cfg
//     protocol, so the same analyzers run identically from the command
//     line, from CI, and from `go vet`.
//
// The API deliberately mirrors x/tools so analyzers could be ported to
// the upstream framework by changing imports alone.
package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name must be a valid identifier; Doc
// is the one-paragraph description shown by `subdexvet help`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// UsesFacts marks analyzers that call Pass.ExportFact /
	// Pass.ImportedFact. It is advisory (drivers always plumb facts) but
	// documents the analyzer's cross-package nature.
	UsesFacts bool
}

// A Diagnostic is one finding, positioned in the analyzed package's file
// set.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved from Pos by the driver
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	store  FactStore
	path   string // canonical package path (test-variant suffixes stripped)
}

// Path returns the canonical import path of the package under analysis,
// with any `go vet` test-variant decoration (" [pkg.test]") stripped, so
// path-based scoping rules behave identically under both drivers.
func (p *Pass) Path() string { return p.path }

// Report records a finding.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Pos: pos, Position: p.Fset.Position(pos), Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// ExportFact stores this analyzer's package fact for the package under
// analysis. v must marshal to JSON. Calling it twice overwrites.
func (p *Pass) ExportFact(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	byPkg := p.store[p.Analyzer.Name]
	if byPkg == nil {
		byPkg = make(map[string]json.RawMessage)
		p.store[p.Analyzer.Name] = byPkg
	}
	byPkg[p.path] = raw
	return nil
}

// ImportedFacts returns the facts this analyzer exported for previously
// analyzed packages, keyed by package path, in sorted-path order. The
// pass's own package is excluded.
func (p *Pass) ImportedFacts() []PackageFact {
	byPkg := p.store[p.Analyzer.Name]
	if len(byPkg) == 0 {
		return nil
	}
	paths := make([]string, 0, len(byPkg))
	for path := range byPkg {
		if path != p.path {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	out := make([]PackageFact, 0, len(paths))
	for _, path := range paths {
		out = append(out, PackageFact{Path: path, Fact: byPkg[path]})
	}
	return out
}

// PackageFact pairs a package path with the raw fact an analyzer
// exported for it.
type PackageFact struct {
	Path string
	Fact json.RawMessage
}

// FactStore accumulates facts across packages: analyzer name → package
// path → raw JSON fact. Drivers thread one store through an analysis
// run; the unitchecker driver serializes it to the vetx file.
type FactStore map[string]map[string]json.RawMessage

// Merge copies other's facts into s (other wins on conflicts).
func (s FactStore) Merge(other FactStore) {
	for name, byPkg := range other {
		dst := s[name]
		if dst == nil {
			dst = make(map[string]json.RawMessage)
			s[name] = dst
		}
		for path, raw := range byPkg {
			dst[path] = raw
		}
	}
}

// A Package is one loaded, type-checked package, ready for analysis.
type Package struct {
	Path      string // canonical import path (no test-variant suffix)
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// CanonicalPath strips `go vet`'s test-variant decorations from an
// import path: "pkg [pkg.test]" → "pkg", "pkg.test" → "pkg".
func CanonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, ".test")
}

// Analyze runs every analyzer over pkg, reading and writing facts in
// store, and returns the findings sorted by position.
func Analyze(pkg *Package, analyzers []*Analyzer, store FactStore) ([]Diagnostic, error) {
	if store == nil {
		store = make(FactStore)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			store:     store,
			path:      pkg.Path,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewTypesInfo allocates a types.Info with every map populated — the
// shape both drivers and the analysistest harness feed to analyzers.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ---------------------------------------------------------------------------
// Shared analyzer helpers
// ---------------------------------------------------------------------------

// IsTestFile reports whether pos sits in a _test.go file. Every SubDEx
// analyzer exempts test files: tests may use context.Background, range
// maps freely, and register scratch metrics.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// FileOf returns the *ast.File of files containing pos, or nil.
func FileOf(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Annotation looks for a `//subdex:<marker> <reason>` suppression
// comment attached to node: either trailing on the node's first line or
// as the last line of a comment ending on the line immediately above.
// It returns the reason text and whether the annotation was found.
func Annotation(fset *token.FileSet, file *ast.File, node ast.Node, marker string) (reason string, found bool) {
	if file == nil {
		return "", false
	}
	nodeLine := fset.Position(node.Pos()).Line
	prefix := "//subdex:" + marker
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if line == nodeLine || line == nodeLine-1 {
				rest := strings.TrimPrefix(c.Text, prefix)
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// EnclosingFuncName returns the name of the innermost *named* function
// declaration in stack (a path of AST nodes from the file root to some
// node), and "" when the node is not inside a FuncDecl. Function
// literals are transparent: a call inside a closure inside NewServer is
// attributed to NewServer.
func EnclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// WalkStack traverses every file, invoking fn with each node and the
// stack of its ancestors (outermost first, not including the node
// itself). Returning false skips the node's children.
func WalkStack(files []*ast.File, fn func(node ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// NamedTypeIn reports whether t (after pointer indirection) is the named
// type pkgSuffix.typeName, where pkgSuffix matches the defining
// package's path exactly or as a "/"-delimited suffix. Suffix matching
// lets testdata fixtures stand in for real packages (a fixture package
// "obs" matches the same rules as "subdex/internal/obs").
func NamedTypeIn(t types.Type, pkgSuffix, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// PathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// CalleeFunc resolves the *types.Func a call expression invokes (through
// selections and qualified identifiers), or nil for calls to function
// values, built-ins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ConstString returns the compile-time string value of expr, if it has
// one (string literal, named constant, or constant expression).
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
