// Package b re-registers a metric that package a already owns, with
// different help text — caught via package facts, proving the duplicate
// check crosses package boundaries.
package b

import "obs"

// NewB is constructor-shaped; only the cross-package duplicate fires.
func NewB(reg *obs.Registry) {
	reg.Counter("subdex_engine_steps_total", "Different help.", obs.L("phase", "score")) // want `re-registered with different help text`
}
