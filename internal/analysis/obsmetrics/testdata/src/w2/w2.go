// Package w2 reuses a wide-event field that package w already shaped,
// once compatibly and once with a different type — the conflict is
// caught via package facts, proving rule 5 crosses package boundaries.
package w2

import "obs"

func record(e *obs.WideEvent) {
	e.Set("records_processed", 7)    // same type as w: accepted
	e.Set("trace_id", []byte("id;")) // want `field "trace_id" set with type \[\]byte \(was string`
}
