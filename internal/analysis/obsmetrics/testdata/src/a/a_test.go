package a

import "obs"

// Test files are exempt from every obsmetrics rule: tests may register
// ad-hoc metrics on throwaway registries.
func helperForTests(reg *obs.Registry) {
	reg.Counter("totally_not_subdex", "scratch metric") // no want: test file
}
