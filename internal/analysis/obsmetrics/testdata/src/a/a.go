// Package a exercises every obsmetrics rule: accepted constructor-time
// registrations, each naming violation, hot-path lookups, and in-package
// duplicate registrations.
package a

import "obs"

// Metrics holds instruments resolved once at construction — the
// discipline the analyzer enforces.
type Metrics struct {
	steps   *obs.Counter
	depth   *obs.Gauge
	latency *obs.Histogram
}

// NewMetrics registers everything up front: all accepted.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		steps:   reg.Counter("subdex_engine_steps_total", "Engine steps executed.", obs.L("phase", "score")),
		depth:   reg.Gauge("subdex_session_depth", "Current exploration depth."),
		latency: reg.Histogram("subdex_step_duration_seconds", "Step latency.", nil, obs.L("phase", "score")),
	}
}

// Package-level initializers resolve once at init time: accepted.
var defaultReg = obs.NewRegistry()
var started = defaultReg.Counter("subdex_process_starts_total", "Process starts.")

var restarts *obs.Counter

func init() {
	restarts = defaultReg.Counter("subdex_process_restarts_total", "Process restarts.")
}

// newBad is constructor-shaped, so only the naming rules fire.
func newBad(reg *obs.Registry) {
	reg.Counter("http_requests_total", "h")     // want `not of the form subdex_`
	reg.Counter("subdex_requests", "h")         // want `must end in _total`
	reg.Gauge("subdex_queue_total", "h")        // want `must not end in _total`
	reg.Histogram("subdex_step_time", "h", nil) // want `must end in a base-unit suffix`
	name := dynamicName()
	reg.Counter(name, "h") // want `must be a string literal or constant`
}

func dynamicName() string { return "subdex_oops_total" }

// Observe is not a constructor: the lookup itself is the violation,
// even though the name is impeccable.
func (m *Metrics) Observe(reg *obs.Registry) {
	reg.Counter("subdex_observe_calls_total", "Observe calls.").Inc() // want `registry lookup in Observe`
}

// newDup re-registers names with conflicting metadata.
func newDup(reg *obs.Registry) {
	reg.Counter("subdex_dup_total", "First help.", obs.L("route", "x"))
	reg.Counter("subdex_dup_total", "Second help.", obs.L("route", "x")) // want `re-registered with different help text`
	reg.Counter("subdex_dup_total", "First help.", obs.L("code", "200")) // want `re-registered with label keys`
	reg.Gauge("subdex_cache_fill_ratio", "Cache fill fraction.")
	reg.Histogram("subdex_cache_fill_ratio", "Cache fill fraction.", nil) // want `re-registered as histogram`
	// Same name, same help, same label KEYS (values differ): accepted —
	// that is exactly how label fan-out works.
	reg.Counter("subdex_retries_total", "Retries.", obs.L("route", "a"))
	reg.Counter("subdex_retries_total", "Retries.", obs.L("route", "b"))
}
