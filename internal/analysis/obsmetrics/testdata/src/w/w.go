// Package w exercises the wide-event field discipline (rule 5):
// accepted snake_case literal keys, every key-shape violation, and
// in-package type conflicts.
package w

import "obs"

// record sets well-formed fields; all accepted (Set is not a registry
// lookup, so it may run anywhere, including hot paths).
func record() *obs.WideEvent {
	return obs.NewWideEvent().
		Set("op", "step").
		Set("trace_id", "4bf92f3577b34da6").
		Set("duration_ms", 1.5).
		Set("records_processed", 42).
		Set("degraded", false)
}

func badKeys(e *obs.WideEvent) {
	e.Set("CamelCase", 1)   // want `not snake_case`
	e.Set("kebab-case", 1)  // want `not snake_case`
	e.Set("_leading", 1)    // want `not snake_case`
	e.Set("trailing_", 1)   // want `not snake_case`
	e.Set("double__bar", 1) // want `not snake_case`
	e.Set("9starts", 1)     // want `not snake_case`
	key := dyn()
	e.Set(key, 1) // want `must be a string literal or constant`
}

func dyn() string { return "x" }

func conflictingShapes(e *obs.WideEvent) {
	// Same field, same static type: accepted — that is normal reuse.
	e.Set("op", "auto")
	e.Set("duration_ms", 2.25)
	// Same field, different static type: one name must mean one shape.
	e.Set("op", 7)              // want `field "op" set with type int \(was string`
	e.Set("duration_ms", "3ms") // want `field "duration_ms" set with type string \(was float64`
}
