// Package obs is a minimal stand-in for subdex/internal/obs: just
// enough surface (Registry, Label, the three instrument kinds) for the
// obsmetrics fixtures to type-check. The analyzer matches registry
// types by package-path suffix, so "obs" here is indistinguishable from
// the real package — and, like the real package, it is itself exempt.
package obs

// Label is one metric label.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone counter.
type Counter struct{ n int64 }

// Inc increments the counter.
func (c *Counter) Inc() { c.n++ }

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set sets the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is a bucketed distribution.
type Histogram struct{ sum float64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.sum += v }

// Registry owns all series.
type Registry struct{}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers/returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

// Gauge registers/returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return &Gauge{} }

// Histogram registers/returns a histogram series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return &Histogram{}
}

// WideEvent is one structured flight-recorder record.
type WideEvent struct{ n int }

// NewWideEvent builds an empty event.
func NewWideEvent() *WideEvent { return &WideEvent{} }

// Set appends a field, chainable.
func (e *WideEvent) Set(key string, value any) *WideEvent { e.n++; return e }
