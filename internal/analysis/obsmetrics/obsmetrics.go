// Package obsmetrics enforces SubDEx's metric-registry discipline on
// every call to (*obs.Registry).Counter / Gauge / Histogram:
//
//  1. The metric name is a compile-time string constant matching
//     ^subdex_[a-z0-9_]+$ — names must be greppable and collision-free
//     across the fleet's dashboards.
//  2. The name carries the canonical unit suffix for its kind: counters
//     end in _total; histograms end in a base unit (_seconds, _bytes,
//     _ratio, _records); gauges must not end in _total (they are not
//     monotone).
//  3. The same name is never registered twice with different help text
//     or a different label-key set — Prometheus scrapes would otherwise
//     see one series family with contradictory metadata. The check uses
//     package facts, so a re-registration in a *different* package is
//     caught too (obs.Registry itself enforces only kind mismatches at
//     runtime; see internal/obs.Registry).
//  4. Registration calls appear only in constructor-shaped functions
//     (New*/new*/init): PR 1 shipped — and review had to catch — a
//     per-request reg.Histogram lookup in the HTTP middleware hot path,
//     a mutex acquisition per request that the registry's own doc
//     comment forbids. Resolve instruments once, then hammer them.
//  5. Flight-recorder wide events obey the same field discipline as
//     metric labels: every (*obs.WideEvent).Set key is a compile-time
//     snake_case string, and a field name is never reused with a value
//     of a different static type — queries over dumped JSONL (and the
//     /debug/flightrecorder?trace= filter) assume one name means one
//     shape everywhere. The check crosses packages via the same facts
//     mechanism as rule 3.
//
// Test files are exempt, as is the obs package itself (it defines the
// API).
package obsmetrics

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"subdex/internal/analysis/framework"
)

// Analyzer is the obsmetrics check.
var Analyzer = &framework.Analyzer{
	Name:      "obsmetrics",
	Doc:       "enforce metric naming, unit suffixes, single registration, and constructor-only registry lookups",
	Run:       run,
	UsesFacts: true,
}

// obsPkgSuffix identifies the registry's package; suffix matching lets
// test fixtures provide a stand-in "obs" package.
const obsPkgSuffix = "internal/obs"

// nameRx is the mandatory shape of a SubDEx metric name.
var nameRx = regexp.MustCompile(`^subdex_[a-z0-9_]+$`)

// fieldRx is the mandatory shape of a wide-event field key: snake_case,
// no leading/trailing/doubled underscores.
var fieldRx = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnits are the accepted base-unit suffixes for histograms.
var histogramUnits = []string{"_seconds", "_bytes", "_ratio", "_records"}

// registration is one metric's first-seen metadata, compared against
// every later registration of the same name.
type registration struct {
	Kind   string   `json:"kind"`
	Help   string   `json:"help"`
	Labels []string `json:"labels"` // sorted label keys; nil = not statically known
	Pos    string   `json:"pos"`    // "file:line" of the first registration
}

// fieldReg is one wide-event field's first-seen metadata.
type fieldReg struct {
	Type string `json:"type"` // static value type; "" = not statically known
	Pos  string `json:"pos"`  // "file:line" of the first Set
}

// fact is the package fact: every metric the package registers and
// every wide-event field it sets.
type fact struct {
	Metrics map[string]registration `json:"metrics"`
	Fields  map[string]fieldReg     `json:"fields,omitempty"`
}

func run(pass *framework.Pass) error {
	if isObsPackage(pass.Path()) {
		return nil
	}

	// Seed the registry view with facts from already-analyzed packages so
	// cross-package duplicates are diagnosed at the later site.
	seen := make(map[string]registration)
	seenFields := make(map[string]fieldReg)
	for _, pf := range pass.ImportedFacts() {
		var f fact
		if err := json.Unmarshal(pf.Fact, &f); err != nil {
			continue
		}
		for name, reg := range f.Metrics {
			if _, ok := seen[name]; !ok {
				seen[name] = reg
			}
		}
		for name, fr := range f.Fields {
			if _, ok := seenFields[name]; !ok {
				seenFields[name] = fr
			}
		}
	}
	local := fact{Metrics: make(map[string]registration), Fields: make(map[string]fieldReg)}

	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWideEventSet(pass, call) {
			if !framework.IsTestFile(pass.Fset, call.Pos()) {
				checkWideField(pass, call, seenFields, local.Fields)
			}
			return true
		}
		kind, ok := registryCallKind(pass, call)
		if !ok {
			return true
		}
		if framework.IsTestFile(pass.Fset, call.Pos()) {
			return true
		}

		checkConstructorContext(pass, call, stack)

		name, ok := framework.ConstString(pass.TypesInfo, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"metric name must be a string literal or constant (dynamic names defeat dashboards and the duplicate-registration check)")
			return true
		}
		checkName(pass, call, kind, name)
		checkDuplicate(pass, call, kind, name, seen, local.Metrics)
		return true
	})

	return pass.ExportFact(local)
}

// isObsPackage reports whether path is the obs package itself.
func isObsPackage(path string) bool {
	return framework.PathHasSuffix(path, obsPkgSuffix) || path == "obs"
}

// registryCallKind reports whether call is a registration on
// obs.Registry and which instrument kind it creates.
func registryCallKind(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	if method != "Counter" && method != "Gauge" && method != "Histogram" {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	if !framework.NamedTypeIn(recv, obsPkgSuffix, "Registry") && !framework.NamedTypeIn(recv, "obs", "Registry") {
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	return strings.ToLower(method), true
}

// isWideEventSet reports whether call is (*obs.WideEvent).Set.
func isWideEventSet(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" || len(call.Args) != 2 {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	return framework.NamedTypeIn(recv, obsPkgSuffix, "WideEvent") ||
		framework.NamedTypeIn(recv, "obs", "WideEvent")
}

// checkWideField enforces rule 5 on one Set call, against both imported
// facts and earlier Sets in this package.
func checkWideField(pass *framework.Pass, call *ast.CallExpr, seen, local map[string]fieldReg) {
	key, ok := framework.ConstString(pass.TypesInfo, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"wide-event field key must be a string literal or constant (dynamic keys defeat dump queries and the field-shape check)")
		return
	}
	if !fieldRx.MatchString(key) {
		pass.Reportf(call.Args[0].Pos(),
			"wide-event field key %q is not snake_case ([a-z0-9] words joined by single underscores)", key)
		return
	}
	fr := fieldReg{
		Type: valueTypeString(pass, call.Args[1]),
		Pos:  pass.Fset.Position(call.Pos()).String(),
	}
	for _, prev := range [2]map[string]fieldReg{local, seen} {
		p, ok := prev[key]
		if !ok {
			continue
		}
		if fr.Type != "" && p.Type != "" && fr.Type != p.Type {
			pass.Reportf(call.Pos(),
				"wide-event field %q set with type %s (was %s at %s): one field name, one shape",
				key, fr.Type, p.Type, p.Pos)
		}
		return
	}
	local[key] = fr
}

// valueTypeString renders the static type of a Set value, with untyped
// constants defaulted ("" when the type is not known).
func valueTypeString(pass *framework.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return types.Default(tv.Type).String()
}

// checkConstructorContext enforces rule 4: the (topmost) named function
// around the call must be constructor-shaped.
func checkConstructorContext(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) {
	name := framework.EnclosingFuncName(stack)
	if name == "" {
		// Package-level var initializer: resolved once at init time, which
		// is exactly the discipline.
		return
	}
	if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
		return
	}
	pass.Reportf(call.Pos(),
		"registry lookup in %s: instruments must be resolved in a constructor (New*/new*/init) and stored, not looked up on the hot path (each lookup takes the registry mutex)", name)
}

// checkName enforces rules 1–2.
func checkName(pass *framework.Pass, call *ast.CallExpr, kind, name string) {
	if !nameRx.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q is not of the form subdex_[a-z0-9_]+", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(call.Args[0].Pos(),
				"counter %q must end in _total (Prometheus counter convention)", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"histogram %q must end in a base-unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(call.Args[0].Pos(),
				"gauge %q must not end in _total (gauges are not monotone)", name)
		}
	}
}

// checkDuplicate enforces rule 3 against both imported facts and
// earlier registrations in this package.
func checkDuplicate(pass *framework.Pass, call *ast.CallExpr, kind, name string, seen, local map[string]registration) {
	help, helpConst := framework.ConstString(pass.TypesInfo, call.Args[1])
	labels, labelsKnown := labelKeys(pass, call, kind)

	reg := registration{
		Kind: kind,
		Pos:  pass.Fset.Position(call.Pos()).String(),
	}
	if helpConst {
		reg.Help = help
	}
	if labelsKnown {
		reg.Labels = labels
	}

	for _, prev := range [2]map[string]registration{local, seen} {
		p, ok := prev[name]
		if !ok {
			continue
		}
		if p.Kind != kind {
			pass.Reportf(call.Pos(),
				"metric %q re-registered as %s (was %s at %s)", name, kind, p.Kind, p.Pos)
		} else if helpConst && p.Help != "" && p.Help != reg.Help {
			pass.Reportf(call.Pos(),
				"metric %q re-registered with different help text (was %q at %s)", name, p.Help, p.Pos)
		} else if labelsKnown && p.Labels != nil && !equalStrings(p.Labels, reg.Labels) {
			pass.Reportf(call.Pos(),
				"metric %q re-registered with label keys [%s] (was [%s] at %s)",
				name, strings.Join(reg.Labels, " "), strings.Join(p.Labels, " "), p.Pos)
		}
		return
	}
	local[name] = reg
}

// labelKeys extracts the constant label keys of a registration call's
// variadic obs.L("key", value) / obs.Label{Key: "key"} arguments, in
// source order. The second result is false when any label is not
// statically resolvable (a slice spread, a computed key, …).
func labelKeys(pass *framework.Pass, call *ast.CallExpr, kind string) ([]string, bool) {
	first := 2 // name, help
	if kind == "histogram" {
		first = 3 // name, help, bounds
	}
	if call.Ellipsis.IsValid() {
		return nil, false // labels... spread: not statically known
	}
	keys := []string{}
	for _, arg := range call.Args[first:] {
		key, ok := labelKey(pass, arg)
		if !ok {
			return nil, false
		}
		keys = append(keys, key)
	}
	return keys, true
}

func labelKey(pass *framework.Pass, arg ast.Expr) (string, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CallExpr: // obs.L("key", v)
		if fn := framework.CalleeFunc(pass.TypesInfo, e); fn != nil && fn.Name() == "L" && len(e.Args) == 2 {
			return framework.ConstString(pass.TypesInfo, e.Args[0])
		}
	case *ast.CompositeLit: // obs.Label{Key: "key", Value: v} or positional
		for i, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
					return framework.ConstString(pass.TypesInfo, kv.Value)
				}
				continue
			}
			if i == 0 { // positional: Key first
				return framework.ConstString(pass.TypesInfo, elt)
			}
		}
	}
	return "", false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
