package obsmetrics_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/obsmetrics"
)

func TestObsMetrics(t *testing.T) {
	// Order matters: package a's facts must be exported before package b
	// re-registers one of its metrics, and w's before w2 reshapes one of
	// its wide-event fields.
	analysistest.Run(t, "testdata", obsmetrics.Analyzer, "a", "b", "w", "w2")
}
