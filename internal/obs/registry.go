// Package obs is SubDEx's dependency-free observability layer: a
// lock-cheap metrics registry (counters, gauges, log-scale histograms)
// with a Prometheus-text-format encoder, and a lightweight span API with
// pluggable sinks (span.go).
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instruments, and every instrument method is a no-op on a nil receiver.
// Library users and tests that never install a registry therefore pay
// nothing — no allocation, no atomics, no locks — while a daemon that
// does install one gets full telemetry from the same code paths.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The zero value is usable;
// a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. A nil Gauge is a
// no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (typically log-scale;
// see LogBuckets). Observation is lock-free: one atomic add for the
// bucket, one for the count, and a CAS loop for the running sum. A nil
// Histogram is a no-op.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets,
	// ascending; counts has len(bounds)+1 entries, the last being +Inf.
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-ish upper_bound: buckets are few (tens), linear scan is
	// cache-friendly and beats binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LogBuckets returns count upper bounds in a geometric progression:
// start, start·factor, start·factor², … — the fixed log-scale bucket
// layout used throughout SubDEx.
func LogBuckets(start, factor float64, count int) []float64 {
	if count <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets covers interactive-latency territory: 250µs to ~8s, doubling.
var DefBuckets = LogBuckets(0.00025, 2, 16)

// RatioBuckets covers (0,1] quantities such as worker utilization.
var RatioBuckets = LogBuckets(1.0/64, 2, 7)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []Label
	kind   metricKind
	help   string

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds named instruments and encodes them in the Prometheus
// text exposition format. Instrument lookup takes one short mutex hold;
// the instruments themselves are lock-free, so the intended pattern is
// to resolve instruments once (at construction) and hammer them on hot
// paths. A nil *Registry hands out nil instruments, making the entire
// API a no-op.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	meta   map[string]seriesMeta
}

// seriesMeta is the per-NAME contract fixed at first registration: every
// later registration of the same name must agree on kind, help text, and
// label-key set, whatever its label values. This is the runtime twin of
// the obsmetrics analyzer's duplicate-registration rule — the analyzer
// catches mismatches at vet time, the registry rejects whatever slips
// past it (reflection, generated code, tests).
type seriesMeta struct {
	kind metricKind
	help string
	keys string // label keys, sorted, "\x00"-joined
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), meta: make(map[string]seriesMeta)}
}

// labelKeySig renders the sorted label-key set as a comparison key.
func labelKeySig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x00")
}

// seriesID builds the registry key of a (name, labels) pair.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the existing series or registers a new one. The
// instrument itself is allocated here, while r.mu is held, so a series
// is never published with a nil instrument and concurrent first-use of
// the same (name, labels) resolves to one shared instrument.
//
// Re-registering a name with a different kind, different help text, or a
// different label-key set is a programmer error and panics: one scrape
// must never see one series family with contradictory metadata. (Label
// VALUES may differ freely — that is label fan-out.) bounds is only
// consulted for kindHistogram.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	id := seriesID(name, labels)
	keys := labelKeySig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.meta[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		// An empty help string makes no metadata claim: it is the
		// "fetch the existing instrument" spelling. The first non-empty
		// help wins and later non-empty helps must agree — the same
		// leniency the obsmetrics analyzer applies to non-constant help.
		if help != "" && m.help != "" && m.help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered with different help (%q, was %q)", name, help, m.help))
		}
		if m.keys != keys {
			panic(fmt.Sprintf("obs: metric %q re-registered with different label keys (%q, was %q)",
				name, strings.ReplaceAll(keys, "\x00", ","), strings.ReplaceAll(m.keys, "\x00", ",")))
		}
		if m.help == "" && help != "" {
			m.help = help
			r.meta[name] = m
		}
	} else {
		r.meta[name] = seriesMeta{kind: kind, help: help, keys: keys}
	}
	if s, ok := r.series[id]; ok {
		return s
	}
	s := &series{name: name, labels: append([]Label(nil), labels...), kind: kind, help: help}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		if bounds == nil {
			bounds = DefBuckets
		}
		s.histogram = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	r.series[id] = s
	return s
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Counter names should end in _total per Prometheus
// convention. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the gauge registered under (name, labels). Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns the histogram registered under (name, labels) with
// the given bucket upper bounds (DefBuckets when nil). Bounds are fixed
// at first registration; later calls reuse them. Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).histogram
}

// WritePrometheus encodes every registered series in the Prometheus text
// exposition format (version 0.0.4), grouped by metric name with one
// HELP/TYPE header per name, names sorted for stable output. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelString(all[i].labels) < labelString(all[j].labels)
	})

	var b strings.Builder
	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, labelString(s.labels), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, labelString(s.labels), formatFloat(s.gauge.Value()))
		case kindHistogram:
			writeHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count, with the series labels merged before the le label.
func writeHistogram(b *strings.Builder, s *series) {
	h := s.histogram
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name,
			labelString(append(append([]Label(nil), s.labels...), L("le", formatFloat(bound)))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name,
		labelString(append(append([]Label(nil), s.labels...), L("le", "+Inf"))), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, labelString(s.labels), h.Count())
}

// labelString renders {k="v",...} or "" when there are no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
