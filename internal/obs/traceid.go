package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
)

// TraceID is a W3C-trace-context trace identifier: 32 lowercase hex
// characters (16 bytes), or "" when a context carries none. One trace ID
// correlates everything a single logical operation touched — the HTTP
// request, its engine phase spans, its wide event in the flight
// recorder, and the load-generator step that issued it.
type TraceID string

// spanIDHexLen and traceIDHexLen are the W3C field widths.
const (
	traceIDHexLen = 32
	spanIDHexLen  = 16
)

// zeroTraceID and zeroSpanID are invalid per the W3C spec.
const (
	zeroTraceID = "00000000000000000000000000000000"
	zeroSpanID  = "0000000000000000"
)

// NewTraceID mints a random trace ID (crypto/rand; never all-zero).
func NewTraceID() TraceID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a non-zero
		// constant keeps the ID valid if it somehow does.
		b[15] = 1
	}
	if allZero(b[:]) {
		b[15] = 1
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// NewSpanID mints a random 16-hex-character parent/span ID for
// traceparent headers.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		b[7] = 1
	}
	if allZero(b[:]) {
		b[7] = 1
	}
	return hex.EncodeToString(b[:])
}

// DeriveTraceID builds a deterministic trace ID from integer parts
// (FNV-1a 128 over their big-endian encoding). The workload harness uses
// it to stamp per-step IDs from (seed, user, step) without consuming any
// RNG draws, so tracing can never perturb which path a seed produces.
func DeriveTraceID(parts ...uint64) TraceID {
	h := fnv.New128a()
	var buf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(buf[:], p)
		_, _ = h.Write(buf[:])
	}
	sum := h.Sum(nil)
	if allZero(sum) {
		sum[len(sum)-1] = 1
	}
	return TraceID(hex.EncodeToString(sum))
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Valid reports whether t is a well-formed, non-zero trace ID.
func (t TraceID) Valid() bool {
	return len(t) == traceIDHexLen && isLowerHex(string(t)) && string(t) != zeroTraceID
}

type traceIDKey struct{}

// WithTraceID installs a trace ID in the context; downstream spans and
// profiles pick it up via TraceIDFrom. An invalid ID returns ctx
// unchanged.
func WithTraceID(ctx context.Context, t TraceID) context.Context {
	if !t.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, t)
}

// TraceIDFrom extracts the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(traceIDKey{}).(TraceID)
	return t
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). It accepts any non-ff version
// whose first four fields have the version-00 widths, per the spec's
// forward-compatibility rule, and rejects all-zero IDs.
func ParseTraceparent(h string) (trace TraceID, parent string, ok bool) {
	if len(h) < 55 {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false
	}
	version, rest := h[:2], h[3:55]
	if !isLowerHex(version) || version == "ff" || h[2] != '-' {
		return "", "", false
	}
	tid, pid, flags := rest[:32], rest[33:49], rest[50:52]
	if rest[32] != '-' || rest[49] != '-' {
		return "", "", false
	}
	if !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return "", "", false
	}
	if tid == zeroTraceID || pid == zeroSpanID {
		return "", "", false
	}
	return TraceID(tid), pid, true
}

// Traceparent renders a version-00 traceparent header for the given
// trace and parent-span IDs (sampled flag set). An invalid input yields
// "" so callers can skip header injection with a plain emptiness check.
func Traceparent(t TraceID, parent string) string {
	if !t.Valid() || len(parent) != spanIDHexLen || !isLowerHex(parent) || parent == zeroSpanID {
		return ""
	}
	return "00-" + string(t) + "-" + parent + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
