package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// collectSink records collected roots for assertions.
type collectSink struct {
	mu    sync.Mutex
	roots []*SpanData
}

func (c *collectSink) Collect(root *SpanData) {
	c.mu.Lock()
	c.roots = append(c.roots, root)
	c.mu.Unlock()
}

func TestSpanTree(t *testing.T) {
	sink := &collectSink{}
	ctx := WithSink(context.Background(), sink)

	ctx, root := StartSpan(ctx, "step")
	if root == nil {
		t.Fatal("sink installed, span must be real")
	}
	root.SetAttr("selection", "TRUE")

	cctx, gen := StartSpan(ctx, "generate")
	_, phase := StartSpan(cctx, "phase")
	phase.SetAttr("phase", 0)
	phase.End()
	gen.End()

	_, rec := StartSpan(ctx, "recommend")
	rec.SetAttr("candidates", 12)
	rec.End()

	if len(sink.roots) != 0 {
		t.Fatal("sink must only see roots, after they end")
	}
	root.End()
	if len(sink.roots) != 1 {
		t.Fatalf("want 1 root, got %d", len(sink.roots))
	}
	d := sink.roots[0]
	if d.Name != "step" || d.Attrs["selection"] != "TRUE" {
		t.Fatalf("root snapshot wrong: %+v", d)
	}
	if len(d.Children) != 2 || d.Children[0].Name != "generate" || d.Children[1].Name != "recommend" {
		t.Fatalf("children wrong: %+v", d.Children)
	}
	if len(d.Children[0].Children) != 1 || d.Children[0].Children[0].Name != "phase" {
		t.Fatalf("grandchild wrong: %+v", d.Children[0].Children)
	}
	if d.DurationMS < 0 {
		t.Fatal("negative duration")
	}
	// The snapshot must serialize cleanly (the /debug/spans contract).
	if _, err := json.Marshal(d); err != nil {
		t.Fatal(err)
	}
	// Double End must not re-deliver.
	root.End()
	if len(sink.roots) != 1 {
		t.Fatal("double End re-delivered the root")
	}
}

// TestSpanConcurrentChildren attaches children from many goroutines —
// the engine's worker pool does exactly this. Run with -race.
func TestSpanConcurrentChildren(t *testing.T) {
	sink := &collectSink{}
	ctx := WithSink(context.Background(), sink)
	ctx, root := StartSpan(ctx, "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "worker")
			s.SetAttr("i", i)
			time.Sleep(time.Millisecond)
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(sink.roots[0].Children); got != 8 {
		t.Fatalf("want 8 children, got %d", got)
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	for i := 0; i < 5; i++ {
		r.Collect(&SpanData{Name: string(rune('a' + i))})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("want 3 buffered, got %d", len(snap))
	}
	// Newest first: e, d, c.
	if snap[0].Name != "e" || snap[1].Name != "d" || snap[2].Name != "c" {
		t.Fatalf("order wrong: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}

	// Partial fill.
	r2 := NewRingSink(8)
	r2.Collect(&SpanData{Name: "only"})
	if s := r2.Snapshot(); len(s) != 1 || s[0].Name != "only" {
		t.Fatalf("partial ring wrong: %+v", s)
	}
	// Degenerate size.
	r3 := NewRingSink(0)
	r3.Collect(&SpanData{Name: "x"})
	r3.Collect(&SpanData{Name: "y"})
	if s := r3.Snapshot(); len(s) != 1 || s[0].Name != "y" {
		t.Fatalf("size-clamped ring wrong: %+v", s)
	}
}

func TestRingSinkConcurrent(t *testing.T) {
	r := NewRingSink(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Collect(&SpanData{Name: "s"})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if len(r.Snapshot()) != 16 {
		t.Fatalf("ring should be full")
	}
}
