package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWideEventMarshalOrder(t *testing.T) {
	ev := NewWideEvent().
		Set("op", "step").
		Set("user", 3).
		Set("duration_ms", 1.5).
		Set("degraded", false)
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"op":"step","user":3,"duration_ms":1.5,"degraded":false}`
	if string(b) != want {
		t.Fatalf("marshal order: got %s, want %s", b, want)
	}
}

func TestWideEventDuplicateKeyLastWins(t *testing.T) {
	ev := NewWideEvent().Set("op", "a").Set("user", 1).Set("op", "b")
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"user":1,"op":"b"}`
	if string(b) != want {
		t.Fatalf("duplicate key: got %s, want %s", b, want)
	}
	if v, ok := ev.Get("op"); !ok || v != "b" {
		t.Fatalf("Get(op) = %v, %v; want b, true", v, ok)
	}
}

func TestWideEventNilSafe(t *testing.T) {
	var ev *WideEvent
	if ev.Set("op", "x") != nil {
		t.Fatal("nil Set should return nil")
	}
	if _, ok := ev.Get("op"); ok {
		t.Fatal("nil Get should miss")
	}
	b, err := json.Marshal(ev)
	if err != nil || string(b) != "null" {
		t.Fatalf("nil marshal: %s, %v", b, err)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(NewWideEvent().Set("op", "x"))
	if f.Len() != 0 || f.DumpsEnabled() {
		t.Fatal("nil recorder should be inert")
	}
	if got := f.Snapshot("", 0); got != nil {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if _, dumped, err := f.Trigger("boom"); dumped || err != nil {
		t.Fatalf("nil Trigger: dumped=%v err=%v", dumped, err)
	}
	d, s := f.Stats()
	if d != 0 || s != 0 {
		t.Fatalf("nil Stats = %d, %d", d, s)
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Ring: 4})
	for i := 0; i < 10; i++ {
		f.Record(NewWideEvent().Set("step", i))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	got := f.Snapshot("", 0)
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d events, want 4", len(got))
	}
	// Newest first: 9, 8, 7, 6.
	for i, want := range []int{9, 8, 7, 6} {
		if v, _ := got[i].Get("step"); v != want {
			t.Fatalf("snapshot[%d] step = %v, want %d", i, v, want)
		}
	}
	if got := f.Snapshot("", 2); len(got) != 2 {
		t.Fatalf("limit=2 kept %d", len(got))
	}
}

func TestFlightRecorderSnapshotTraceFilter(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Ring: 16})
	want := string(DeriveTraceID(7))
	f.Record(NewWideEvent().Set("trace_id", string(DeriveTraceID(1))).Set("step", 1))
	f.Record(NewWideEvent().Set("trace_id", want).Set("step", 2))
	f.Record(NewWideEvent().Set("step", 3)) // no trace at all
	got := f.Snapshot(want, 0)
	if len(got) != 1 {
		t.Fatalf("trace filter kept %d events, want 1", len(got))
	}
	if v, _ := got[0].Get("step"); v != 2 {
		t.Fatalf("wrong event survived the filter: step = %v", v)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Ring: 64, Dir: t.TempDir(), MinInterval: time.Nanosecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(NewWideEvent().Set("user", g).Set("step", i))
				if i%50 == 0 {
					f.Snapshot("", 10)
					if _, _, err := f.Trigger(fmt.Sprintf("reason_%d", g)); err != nil {
						t.Errorf("Trigger: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 64 {
		t.Fatalf("ring should be full: Len = %d", f.Len())
	}
}

func TestFlightRecorderTriggerRateLimit(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	f := NewFlightRecorder(FlightOptions{Ring: 8, Dir: dir, MinInterval: 30 * time.Second, Clock: clock})
	f.Record(NewWideEvent().Set("op", "step").Set("trace_id", string(DeriveTraceID(1))))

	// A storm of identical triggers: exactly one dump.
	var dumpedPaths []string
	for i := 0; i < 50; i++ {
		path, dumped, err := f.Trigger("slo_breach")
		if err != nil {
			t.Fatal(err)
		}
		if dumped {
			dumpedPaths = append(dumpedPaths, path)
		}
	}
	if len(dumpedPaths) != 1 {
		t.Fatalf("storm produced %d dumps, want exactly 1", len(dumpedPaths))
	}
	dumps, suppressed := f.Stats()
	if dumps != 1 || suppressed != 49 {
		t.Fatalf("Stats = (%d, %d), want (1, 49)", dumps, suppressed)
	}

	// A different reason dumps independently.
	if _, dumped, err := f.Trigger("http_5xx"); err != nil || !dumped {
		t.Fatalf("different reason should dump: dumped=%v err=%v", dumped, err)
	}

	// After the window passes, the original reason dumps again.
	now = now.Add(31 * time.Second)
	if _, dumped, err := f.Trigger("slo_breach"); err != nil || !dumped {
		t.Fatalf("post-window trigger should dump: dumped=%v err=%v", dumped, err)
	}

	// Each dump wrote a JSONL file and a profile snapshot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, profiles int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".jsonl"):
			jsonl++
		case strings.HasSuffix(e.Name(), ".profiles.txt"):
			profiles++
		}
	}
	if jsonl != 3 || profiles != 3 {
		t.Fatalf("dump dir has %d jsonl + %d profile files, want 3 + 3", jsonl, profiles)
	}
}

func TestFlightRecorderDumpContents(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightOptions{Ring: 8, Dir: dir, Name: "server"})
	tid := string(DeriveTraceID(9))
	f.Record(NewWideEvent().Set("op", "step").Set("step", 1).Set("trace_id", tid))
	f.Record(NewWideEvent().Set("op", "step").Set("step", 2).Set("trace_id", tid))

	path, dumped, err := f.Trigger("degraded_step")
	if err != nil || !dumped {
		t.Fatalf("Trigger: dumped=%v err=%v", dumped, err)
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, "server-") || !strings.Contains(base, "degraded_step") {
		t.Fatalf("dump filename %q should carry name and reason", base)
	}

	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want header + 2 events", len(lines))
	}
	if lines[0]["reason"] != "degraded_step" || lines[0]["events"] != float64(2) {
		t.Fatalf("bad header: %v", lines[0])
	}
	// Events are chronological in the dump.
	if lines[1]["step"] != float64(1) || lines[2]["step"] != float64(2) {
		t.Fatalf("events out of order: %v then %v", lines[1], lines[2])
	}
	for _, ev := range lines[1:] {
		if ev["trace_id"] != tid {
			t.Fatalf("event lost its trace ID: %v", ev)
		}
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event missing auto-stamped ts: %v", ev)
		}
	}

	// The profile companion mentions both profile kinds.
	prof, err := os.ReadFile(strings.TrimSuffix(path, ".jsonl") + ".profiles.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prof), "goroutine profile") || !strings.Contains(string(prof), "heap profile") {
		t.Fatalf("profile snapshot incomplete:\n%s", prof)
	}
}

func TestFlightRecorderDumpsDisabled(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Ring: 8})
	f.Record(NewWideEvent().Set("op", "step"))
	path, dumped, err := f.Trigger("slo_breach")
	if err != nil || dumped || path != "" {
		t.Fatalf("disabled dumps: (%q, %v, %v)", path, dumped, err)
	}
	dumps, suppressed := f.Stats()
	if dumps != 0 || suppressed != 0 {
		t.Fatalf("disabled dumps should count nothing: (%d, %d)", dumps, suppressed)
	}
	if f.Len() != 1 {
		t.Fatal("ring should still record with dumps disabled")
	}
}
