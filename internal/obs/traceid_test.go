package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDValid(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if !id.Valid() {
			t.Fatalf("NewTraceID() = %q, not valid", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestNewSpanID(t *testing.T) {
	id := NewSpanID()
	if len(id) != spanIDHexLen || !isLowerHex(id) || id == zeroSpanID {
		t.Fatalf("NewSpanID() = %q, want 16 non-zero lowercase hex chars", id)
	}
}

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID(42, 7, 3)
	b := DeriveTraceID(42, 7, 3)
	if a != b {
		t.Fatalf("DeriveTraceID not deterministic: %q vs %q", a, b)
	}
	if !a.Valid() {
		t.Fatalf("DeriveTraceID produced invalid ID %q", a)
	}
	if c := DeriveTraceID(42, 7, 4); c == a {
		t.Fatalf("DeriveTraceID collision across different parts: %q", c)
	}
}

func TestTraceIDValid(t *testing.T) {
	cases := []struct {
		id   TraceID
		want bool
	}{
		{"4bf92f3577b34da6a3ce929d0e0e4736", true},
		{TraceID(zeroTraceID), false},
		{"", false},
		{"4bf92f3577b34da6a3ce929d0e0e473", false},   // short
		{"4bf92f3577b34da6a3ce929d0e0e47361", false}, // long
		{"4BF92F3577B34DA6A3CE929D0E0E4736", false},  // uppercase
		{"4bf92f3577b34da6a3ce929d0e0e473g", false},  // non-hex
	}
	for _, c := range cases {
		if got := c.id.Valid(); got != c.want {
			t.Errorf("TraceID(%q).Valid() = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestWithTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	ctx := WithTraceID(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %q, want %q", got, id)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("TraceIDFrom(empty ctx) = %q, want empty", got)
	}
	if got := TraceIDFrom(nil); got != "" {
		t.Fatalf("TraceIDFrom(nil) = %q, want empty", got)
	}
	// Invalid IDs never enter the context.
	ctx = WithTraceID(context.Background(), "nope")
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("invalid ID leaked into context: %q", got)
	}
}

func TestParseTraceparent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const pid = "00f067aa0ba902b7"
	cases := []struct {
		name   string
		header string
		ok     bool
	}{
		{"canonical", "00-" + tid + "-" + pid + "-01", true},
		{"unsampled", "00-" + tid + "-" + pid + "-00", true},
		{"future version", "42-" + tid + "-" + pid + "-01", true},
		{"future version with extra field", "42-" + tid + "-" + pid + "-01-extra", true},
		{"version ff", "ff-" + tid + "-" + pid + "-01", false},
		{"uppercase version", "A0-" + tid + "-" + pid + "-01", false},
		{"zero trace id", "00-" + zeroTraceID + "-" + pid + "-01", false},
		{"zero parent id", "00-" + tid + "-" + zeroSpanID + "-01", false},
		{"truncated", "00-" + tid + "-" + pid, false},
		{"bad separator", "00_" + tid + "-" + pid + "-01", false},
		{"trailing junk", "00-" + tid + "-" + pid + "-01x", false},
		{"uppercase trace id", "00-" + strings.ToUpper(tid) + "-" + pid + "-01", false},
		{"empty", "", false},
	}
	for _, c := range cases {
		gotTID, gotPID, ok := ParseTraceparent(c.header)
		if ok != c.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", c.name, c.header, ok, c.ok)
			continue
		}
		if ok && (gotTID != TraceID(tid) || gotPID != pid) {
			t.Errorf("%s: got (%q, %q), want (%q, %q)", c.name, gotTID, gotPID, tid, pid)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	parent := NewSpanID()
	h := Traceparent(id, parent)
	if h == "" {
		t.Fatal("Traceparent returned empty for valid inputs")
	}
	gotTID, gotPID, ok := ParseTraceparent(h)
	if !ok || gotTID != id || gotPID != parent {
		t.Fatalf("round trip failed: header %q parsed to (%q, %q, %v)", h, gotTID, gotPID, ok)
	}
	if Traceparent("bad", parent) != "" {
		t.Error("Traceparent accepted invalid trace ID")
	}
	if Traceparent(id, "short") != "" {
		t.Error("Traceparent accepted invalid parent ID")
	}
}

func TestRootSpanBindsTraceID(t *testing.T) {
	sink := NewRingSink(8)
	base := WithSink(context.Background(), sink)

	// A context-carried ID lands on the root.
	want := NewTraceID()
	ctx, root := StartSpan(WithTraceID(base, want), "outer")
	_, child := StartSpan(ctx, "inner")
	child.End()
	root.End()

	// Without one, the root mints an ID and re-installs it in ctx.
	ctx2, root2 := StartSpan(base, "minted")
	minted := TraceIDFrom(ctx2)
	if !minted.Valid() {
		t.Fatalf("root did not install a minted trace ID (got %q)", minted)
	}
	root2.End()

	spans := sink.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d root spans, want 2", len(spans))
	}
	// Newest first: minted root, then the explicit one.
	if spans[0].TraceID != minted {
		t.Errorf("minted root TraceID = %q, want %q", spans[0].TraceID, minted)
	}
	if spans[1].TraceID != want {
		t.Errorf("explicit root TraceID = %q, want %q", spans[1].TraceID, want)
	}
	if len(spans[1].Children) != 1 || spans[1].Children[0].TraceID != "" {
		t.Errorf("child spans must leave TraceID empty (inherit from root): %+v", spans[1].Children)
	}
}

func TestRingSinkSnapshotFiltered(t *testing.T) {
	sink := NewRingSink(8)
	base := WithSink(context.Background(), sink)
	ids := make([]TraceID, 5)
	for i := range ids {
		ids[i] = DeriveTraceID(uint64(i) + 1)
		_, s := StartSpan(WithTraceID(base, ids[i]), "op")
		s.End()
	}

	if got := sink.SnapshotFiltered("", 0); len(got) != 5 {
		t.Fatalf("unfiltered: got %d spans, want 5", len(got))
	}
	got := sink.SnapshotFiltered("", 2)
	if len(got) != 2 || got[0].TraceID != ids[4] || got[1].TraceID != ids[3] {
		t.Fatalf("limit=2 should keep the 2 newest, got %+v", got)
	}
	got = sink.SnapshotFiltered(ids[1], 0)
	if len(got) != 1 || got[0].TraceID != ids[1] {
		t.Fatalf("trace filter: got %+v, want just %q", got, ids[1])
	}
	if got := sink.SnapshotFiltered("deadbeefdeadbeefdeadbeefdeadbeef", 0); len(got) != 0 {
		t.Fatalf("unknown trace should match nothing, got %d", len(got))
	}
}
