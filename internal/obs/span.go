package obs

import (
	"context"
	"sync"
	"time"
)

// SpanSink receives finished root spans. Implementations must be safe
// for concurrent use.
type SpanSink interface {
	// Collect is called once per finished root span with an immutable
	// snapshot of its whole tree.
	Collect(root *SpanData)
}

// SpanData is the immutable, JSON-friendly snapshot of one span.
type SpanData struct {
	Name string `json:"name"`
	// TraceID correlates the tree with its request: root spans carry the
	// context's trace ID (minting one when absent), so /debug/spans can
	// be filtered by the ID a client propagated via traceparent. Children
	// inherit the root's ID implicitly and leave the field empty.
	TraceID    TraceID        `json:"trace_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanData    `json:"children,omitempty"`
}

// Span is one timed unit of work. Spans form trees: StartSpan under a
// context that already carries a span attaches a child. All methods are
// no-ops on a nil receiver, which is what StartSpan returns when no sink
// is installed — instrumented code needs no conditionals.
type Span struct {
	name  string
	start time.Time
	sink  SpanSink // non-nil only on roots
	trace TraceID  // non-empty only on roots

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value span attribute (values stay `any` so callers
// can attach counts, durations, and strings without formatting).
type Attr struct {
	Key   string
	Value any
}

type sinkKey struct{}
type spanKey struct{}

// WithSink returns a context under which StartSpan produces real spans
// delivered to sink when their root ends. A nil sink returns ctx
// unchanged.
func WithSink(ctx context.Context, sink SpanSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkFrom extracts the installed sink, or nil.
func SinkFrom(ctx context.Context) SpanSink {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(sinkKey{}).(SpanSink)
	return s
}

// StartSpan begins a span named name. If the context carries a parent
// span, the new span is attached as its child; otherwise it becomes a
// root bound to the context's sink. When no sink is installed the call
// is free: it returns (ctx, nil) and the nil span swallows SetAttr/End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		sink := SinkFrom(ctx)
		if sink == nil {
			return ctx, nil
		}
		// Roots bind the context's trace ID (minting one when absent) and
		// re-install it so every child span and downstream profile sees
		// the same ID the root was collected under.
		tid := TraceIDFrom(ctx)
		if tid == "" {
			tid = NewTraceID()
			ctx = WithTraceID(ctx, tid)
		}
		s := &Span{name: name, start: time.Now(), sink: sink, trace: tid}
		return context.WithValue(ctx, spanKey{}, s), s
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr attaches a key/value attribute. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span. Ending a root span snapshots the tree and hands
// it to the sink; double End is a no-op. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Collect(s.snapshot())
	}
}

// Duration returns the span's recorded duration (0 before End / on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// snapshot deep-copies the span tree into SpanData. Children that never
// ended are snapshotted with their duration-so-far.
func (s *Span) snapshot() *SpanData {
	s.mu.Lock()
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	out := &SpanData{
		Name:       s.name,
		TraceID:    s.trace,
		Start:      s.start,
		DurationMS: float64(d.Microseconds()) / 1000,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// RingSink keeps the most recent n root spans in a ring buffer — the
// storage behind the server's /debug/spans endpoint.
type RingSink struct {
	mu   sync.Mutex
	buf  []*SpanData
	next int
	full bool
}

// NewRingSink builds a sink holding the latest n spans (n < 1 → 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]*SpanData, n)}
}

// Collect implements SpanSink.
func (r *RingSink) Collect(root *SpanData) {
	if r == nil || root == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = root
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, newest first.
func (r *RingSink) Snapshot() []*SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*SpanData, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		if r.buf[idx] != nil {
			out = append(out, r.buf[idx])
		}
	}
	return out
}

// SnapshotFiltered is Snapshot restricted to roots carrying the given
// trace ID (trace "" disables the filter) and truncated to the newest
// limit spans (limit <= 0 disables truncation) — the /debug/spans query
// parameters.
func (r *RingSink) SnapshotFiltered(trace TraceID, limit int) []*SpanData {
	all := r.Snapshot()
	if trace != "" {
		kept := all[:0]
		for _, sp := range all {
			if sp.TraceID == trace {
				kept = append(kept, sp)
			}
		}
		all = kept
	}
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}
