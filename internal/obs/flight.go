// Flight recorder: a bounded ring of wide events — one structured,
// many-field record per unit of work (an exploration step, a failed
// request) — with trigger-based dumps. The ring is always cheap to feed;
// when something goes wrong (a 5xx, a degraded step, an SLO breach) a
// trigger writes the recent ring plus a goroutine/heap profile snapshot
// to disk, rate-limited per reason so a sustained failure cannot storm
// the filesystem. The live ring is served at /debug/flightrecorder.

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// WideEvent is one flight-recorder record: an ordered list of
// snake_case-keyed fields. Build it fluently with Set; the obsmetrics
// analyzer enforces that keys are literal snake_case strings and that a
// key is never set with two different value types across the codebase.
// A WideEvent is built by one goroutine and immutable once recorded.
type WideEvent struct {
	fields []Attr
}

// NewWideEvent starts an empty event.
func NewWideEvent() *WideEvent { return &WideEvent{} }

// Set appends one field and returns the event for chaining. Nil-safe.
// Keys must be literal snake_case strings (enforced statically); setting
// the same key twice keeps both entries, last-writer-wins on render.
func (e *WideEvent) Set(key string, value any) *WideEvent {
	if e == nil {
		return nil
	}
	e.fields = append(e.fields, Attr{Key: key, Value: value})
	return e
}

// Get returns the last value set under key.
func (e *WideEvent) Get(key string) (any, bool) {
	if e == nil {
		return nil, false
	}
	for i := len(e.fields) - 1; i >= 0; i-- {
		if e.fields[i].Key == key {
			return e.fields[i].Value, true
		}
	}
	return nil, false
}

// MarshalJSON renders the event as a JSON object in field insertion
// order (duplicate keys keep the later entry only), so dumps read in the
// order the instrumentation wrote and diff stably.
func (e *WideEvent) MarshalJSON() ([]byte, error) {
	if e == nil {
		return []byte("null"), nil
	}
	drop := make(map[string]int, len(e.fields))
	for i, f := range e.fields {
		drop[f.Key] = i
	}
	var buf bytes.Buffer
	buf.WriteByte('{')
	first := true
	for i, f := range e.fields {
		if drop[f.Key] != i {
			continue
		}
		if !first {
			buf.WriteByte(',')
		}
		first = false
		k, err := json.Marshal(f.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(f.Value)
		if err != nil {
			return nil, fmt.Errorf("obs: wide event field %q: %w", f.Key, err)
		}
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// FlightOptions configure a FlightRecorder. The zero value gives a
// 256-event ring with dumps disabled.
type FlightOptions struct {
	// Ring bounds the event buffer (default 256).
	Ring int
	// Dir is where triggered dumps are written; "" disables dumps (the
	// ring still records and serves).
	Dir string
	// Name tags dump filenames ("<name>-<seq>-<reason>.jsonl"), default
	// "flight" — so server-side and client-side recorders sharing a
	// directory stay distinguishable.
	Name string
	// MinInterval is the per-reason dump rate limit (default 30s):
	// repeated triggers for the same reason inside the window are
	// suppressed, so a failing SLO or a 5xx storm yields one dump, not
	// thousands.
	MinInterval time.Duration
	// Clock overrides time.Now for the rate limiter (tests).
	Clock func() time.Time
}

// FlightRecorder is a concurrency-safe bounded ring of wide events with
// trigger-based dumping. All methods are no-ops on a nil receiver.
type FlightRecorder struct {
	dir         string
	name        string
	minInterval time.Duration
	clock       func() time.Time

	mu         sync.Mutex
	buf        []*WideEvent
	next       int
	full       bool
	lastDump   map[string]time.Time
	seq        int
	dumps      int
	suppressed int
}

// NewFlightRecorder builds a recorder from opts.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	if opts.Ring < 1 {
		opts.Ring = 256
	}
	if opts.Name == "" {
		opts.Name = "flight"
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &FlightRecorder{
		dir:         opts.Dir,
		name:        opts.Name,
		minInterval: opts.MinInterval,
		clock:       opts.Clock,
		buf:         make([]*WideEvent, opts.Ring),
		lastDump:    make(map[string]time.Time),
	}
}

// DumpsEnabled reports whether triggers can write dumps (a Dir is set).
func (f *FlightRecorder) DumpsEnabled() bool { return f != nil && f.dir != "" }

// Record appends one event to the ring, stamping a "ts" field when the
// caller did not. Safe for concurrent use; nil-safe.
func (f *FlightRecorder) Record(ev *WideEvent) {
	if f == nil || ev == nil {
		return
	}
	if _, ok := ev.Get("ts"); !ok {
		ev.Set("ts", f.clock().UTC().Format(time.RFC3339Nano))
	}
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Snapshot returns buffered events newest first, optionally restricted
// to those whose "trace_id" field equals trace ("" disables the filter)
// and truncated to limit events (<= 0 disables truncation).
func (f *FlightRecorder) Snapshot(trace string, limit int) []*WideEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	all := f.newestFirstLocked()
	f.mu.Unlock()
	if trace != "" {
		kept := all[:0]
		for _, ev := range all {
			if v, ok := ev.Get("trace_id"); ok && fmt.Sprint(v) == trace {
				kept = append(kept, ev)
			}
		}
		all = kept
	}
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// newestFirstLocked copies the ring newest first; caller holds f.mu.
func (f *FlightRecorder) newestFirstLocked() []*WideEvent {
	n := f.next
	if f.full {
		n = len(f.buf)
	}
	out := make([]*WideEvent, 0, n)
	for i := 0; i < n; i++ {
		idx := (f.next - 1 - i + len(f.buf)) % len(f.buf)
		if f.buf[idx] != nil {
			out = append(out, f.buf[idx])
		}
	}
	return out
}

// Stats reports how many dumps were written and how many triggers the
// rate limiter suppressed.
func (f *FlightRecorder) Stats() (dumps, suppressed int) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps, f.suppressed
}

// Trigger requests a dump for reason. With dumps disabled it is a no-op
// (false, no error, nothing counted). Otherwise it is rate-limited per
// reason: inside MinInterval of the previous dump for the same reason
// the trigger is suppressed. A dump writes two files under Dir — the
// ring as JSONL (a header line, then events oldest first) and a
// goroutine+heap profile snapshot — and returns the JSONL path. File
// I/O happens outside the recorder lock.
func (f *FlightRecorder) Trigger(reason string) (path string, dumped bool, err error) {
	if f == nil || f.dir == "" {
		return "", false, nil
	}
	f.mu.Lock()
	now := f.clock()
	if last, ok := f.lastDump[reason]; ok && now.Sub(last) < f.minInterval {
		f.suppressed++
		f.mu.Unlock()
		return "", false, nil
	}
	f.lastDump[reason] = now
	f.seq++
	seq := f.seq
	f.dumps++
	events := f.newestFirstLocked()
	f.mu.Unlock()

	// Oldest first: a dump reads chronologically.
	for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
		events[i], events[j] = events[j], events[i]
	}
	base := fmt.Sprintf("%s-%03d-%s", f.name, seq, sanitizeReason(reason))
	path = filepath.Join(f.dir, base+".jsonl")
	if err := f.writeDump(path, reason, now, events); err != nil {
		return "", false, err
	}
	if err := writeProfileSnapshot(filepath.Join(f.dir, base+".profiles.txt")); err != nil {
		return path, true, err
	}
	return path, true, nil
}

// writeDump writes the JSONL dump file.
func (f *FlightRecorder) writeDump(path, reason string, at time.Time, events []*WideEvent) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := map[string]any{
		"flight_recorder": f.name,
		"reason":          reason,
		"at":              at.UTC().Format(time.RFC3339Nano),
		"events":          len(events),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// writeProfileSnapshot dumps the goroutine and heap profiles in their
// human-readable text form — the "what was the process doing" half of a
// flight-recorder dump.
func writeProfileSnapshot(path string) error {
	var buf bytes.Buffer
	for _, name := range []string{"goroutine", "heap"} {
		fmt.Fprintf(&buf, "=== %s profile ===\n", name)
		p := pprof.Lookup(name)
		if p == nil {
			fmt.Fprintf(&buf, "(unavailable)\n")
			continue
		}
		if err := p.WriteTo(&buf, 1); err != nil {
			fmt.Fprintf(&buf, "(error: %v)\n", err)
		}
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// sanitizeReason keeps dump filenames portable.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "trigger"
	}
	return string(out)
}
