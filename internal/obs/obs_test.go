package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives the entire API through nil receivers: nothing may
// panic, and all reads return zeros. This is the "zero-cost when not
// installed" contract the instrumented hot paths rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	// Spans without a sink are nil and fully inert.
	ctx, span := StartSpan(context.Background(), "root")
	if span != nil {
		t.Fatal("StartSpan without sink must return nil span")
	}
	span.SetAttr("k", "v")
	span.End()
	span.End()
	if span.Duration() != 0 {
		t.Fatal("nil span duration must be zero")
	}
	_, child := StartSpan(ctx, "child")
	child.End()

	var ring *RingSink
	ring.Collect(&SpanData{})
	if ring.Snapshot() != nil {
		t.Fatal("nil ring snapshot must be nil")
	}
	// nil context must not panic either.
	_, s := StartSpan(nil, "x") //nolint:staticcheck // deliberate nil ctx
	s.End()
}

// TestConcurrentHammer hammers one counter, gauge, and histogram from
// many goroutines; run under -race this doubles as the data-race proof,
// and the final values prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the registry inside the goroutine too, so
			// the lookup path is exercised concurrently.
			c := r.Counter("hammer_total", "hammered")
			g := r.Gauge("hammer_gauge", "hammered")
			h := r.Histogram("hammer_seconds", "hammered", LogBuckets(0.001, 2, 10))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%7) * 0.003)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
	if got := r.Gauge("hammer_gauge", "").Value(); got != 0 {
		t.Fatalf("gauge should balance to 0, got %v", got)
	}
	h := r.Histogram("hammer_seconds", "", nil)
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram lost observations: got %d", h.Count())
	}
	wantSum := float64(goroutines) * perGSum(perG)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum: got %v want %v", h.Sum(), wantSum)
	}
}

// TestConcurrentFirstUse is the regression test for the lazy-creation
// race: many goroutines racing on the *first* resolution of the same
// fresh series (the middleware pattern — resolve per request) while
// WritePrometheus runs concurrently. Under the old code this lost
// increments (two instruments allocated, one overwritten) and could
// panic in writeHistogram on a published-but-nil histogram; now
// instruments are born inside the registry lock, so every goroutine
// shares one instrument and the encoder never sees a nil one.
func TestConcurrentFirstUse(t *testing.T) {
	const goroutines, rounds = 16, 50
	for round := 0; round < rounds; round++ {
		r := NewRegistry()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				r.Counter("first_use_total", "h").Inc()
				r.Gauge("first_use_gauge", "h").Add(1)
				r.Histogram("first_use_seconds", "h", nil).Observe(0.01)
				// Encode concurrently with first-use registration.
				_ = r.WritePrometheus(&strings.Builder{})
			}()
		}
		close(start)
		wg.Wait()
		if got := r.Counter("first_use_total", "").Value(); got != goroutines {
			t.Fatalf("round %d: counter lost first-use increments: got %d want %d",
				round, got, goroutines)
		}
		if got := r.Gauge("first_use_gauge", "").Value(); got != goroutines {
			t.Fatalf("round %d: gauge lost first-use adds: got %v", round, got)
		}
		if got := r.Histogram("first_use_seconds", "", nil).Count(); got != goroutines {
			t.Fatalf("round %d: histogram lost first-use observations: got %d", round, got)
		}
	}
}

func perGSum(n int) float64 {
	s := 0.0
	for j := 0; j < n; j++ {
		s += float64(j%7) * 0.003
	}
	return s
}

// TestPrometheusGolden pins the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("subdex_demo_total", "demo counter", L("kind", "a")).Add(3)
	r.Counter("subdex_demo_total", "demo counter", L("kind", "b")).Add(1)
	r.Gauge("subdex_demo_gauge", "demo gauge").Set(2.5)
	h := r.Histogram("subdex_demo_seconds", "demo histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP subdex_demo_gauge demo gauge
# TYPE subdex_demo_gauge gauge
subdex_demo_gauge 2.5
# HELP subdex_demo_seconds demo histogram
# TYPE subdex_demo_seconds histogram
subdex_demo_seconds_bucket{le="0.1"} 1
subdex_demo_seconds_bucket{le="1"} 3
subdex_demo_seconds_bucket{le="10"} 3
subdex_demo_seconds_bucket{le="+Inf"} 4
subdex_demo_seconds_sum 100.05
subdex_demo_seconds_count 4
# HELP subdex_demo_total demo counter
# TYPE subdex_demo_total counter
subdex_demo_total{kind="a"} 3
subdex_demo_total{kind="b"} 1
`
	if b.String() != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestRegistryReuseAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", L("k", "v1"))
	b := r.Counter("x_total", "h", L("k", "v1"))
	if a != b {
		t.Fatal("same (name,labels) must return the same counter")
	}
	if r.Counter("x_total", "h", L("k", "v2")) == a {
		t.Fatal("different label values must be a different series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "h", L("k", "v3"))
}

// TestRegistryMetadataContract pins the per-name registration contract:
// the first registration fixes (kind, help, label-key set) and any later
// registration that disagrees panics, while label-VALUE fan-out over the
// same keys is the supported pattern. This is the runtime twin of the
// obsmetrics analyzer's duplicate-registration rule — the two must not
// drift apart.
func TestRegistryMetadataContract(t *testing.T) {
	mustPanic := func(t *testing.T, substr string, f func()) {
		t.Helper()
		defer func() {
			p := recover()
			if p == nil {
				t.Fatalf("expected panic containing %q", substr)
			}
			if s, _ := p.(string); !strings.Contains(s, substr) {
				t.Fatalf("panic %v does not mention %q", p, substr)
			}
		}()
		f()
	}

	t.Run("help mismatch panics", func(t *testing.T) {
		r := NewRegistry()
		r.Counter("subdex_x_total", "first help", L("route", "a"))
		mustPanic(t, "different help", func() {
			r.Counter("subdex_x_total", "second help", L("route", "a"))
		})
	})
	t.Run("label key mismatch panics", func(t *testing.T) {
		r := NewRegistry()
		r.Counter("subdex_x_total", "h", L("route", "a"))
		mustPanic(t, "different label keys", func() {
			r.Counter("subdex_x_total", "h", L("code", "200"))
		})
	})
	t.Run("kind mismatch panics across label values", func(t *testing.T) {
		r := NewRegistry()
		r.Counter("subdex_x_total", "h", L("route", "a"))
		mustPanic(t, "re-registered as", func() {
			r.Gauge("subdex_x_total", "h", L("route", "b"))
		})
	})
	t.Run("label value fan-out is fine", func(t *testing.T) {
		r := NewRegistry()
		a := r.Counter("subdex_x_total", "h", L("route", "a"))
		b := r.Counter("subdex_x_total", "h", L("route", "b"))
		if a == b {
			t.Fatal("distinct label values must yield distinct series")
		}
		// Key ORDER is irrelevant: the signature is sorted.
		c1 := r.Counter("subdex_y_total", "h", L("route", "a"), L("code", "200"))
		c2 := r.Counter("subdex_y_total", "h", L("code", "201"), L("route", "b"))
		if c1 == nil || c2 == nil {
			t.Fatal("reordered label keys must register cleanly")
		}
	})
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if LogBuckets(0, 2, 3) != nil || LogBuckets(1, 1, 3) != nil || LogBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("p", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{p="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}
