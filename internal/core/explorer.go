package core

import (
	"context"
	"fmt"
	"time"

	"subdex/internal/dataset"
	"subdex/internal/diversity"
	"subdex/internal/engine"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Explorer is the SDE Engine of Figure 4: it turns a selection query into a
// rating group, asks the RM-Set Generator for the step's diverse high-
// utility rating maps, and drives the Recommendation Builder.
type Explorer struct {
	DB    *dataset.DB
	Query *query.Engine
	Gen   *engine.Generator
	Cfg   Config
	// Ins carries the explorer's telemetry instruments; nil (the
	// default) disables them. Install via Instrument.
	Ins *Instruments
}

// NewExplorer builds an explorer over a frozen database. Databases with a
// single rating dimension get dimension weighting disabled: Equation 1
// exists to balance dimensions against each other, and with one dimension
// it can only distort the ranking (the weight factor is identical for all
// candidates).
func NewExplorer(db *dataset.DB, cfg Config) (*Explorer, error) {
	qe, err := query.NewEngine(db)
	if err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if len(db.Ratings.Dimensions) == 1 {
		cfg.Engine.Utility.DisableDimensionWeights = true
	}
	if cfg.GroupCacheRecords > 0 {
		qe.EnableGroupCache(cfg.GroupCacheRecords)
	}
	gen := engine.NewGenerator(db)
	if cfg.EngineCacheRecords > 0 {
		gen.Cache = engine.NewTopMapsCache(cfg.EngineCacheRecords)
	}
	gen.Scanner = cfg.Scanner
	ex := &Explorer{DB: db, Query: qe, Gen: gen, Cfg: cfg}
	// Arm the distributed scanner's mixed-version guard: every worker
	// RPC carries this fingerprint and workers refuse ranges scanned
	// under a different engine configuration or dataset.
	if b, ok := cfg.Scanner.(interface{ BindFingerprint(string) }); ok {
		b.BindFingerprint(ex.Fingerprint())
	}
	return ex, nil
}

// EngineCacheStats snapshots the RM-Generator's cross-step accumulator
// cache (zero stats when the cache is disabled). All sessions of this
// explorer share the cache, so the counters aggregate the whole workload.
func (ex *Explorer) EngineCacheStats() engine.CacheStats {
	return ex.Gen.Cache.Stats()
}

// InvalidateEngineCache drops every cached accumulator, e.g. after the
// underlying database is swapped. Safe to call with the cache disabled.
func (ex *Explorer) InvalidateEngineCache() {
	ex.Gen.Cache.Invalidate()
}

// StepResult is what one exploration step displays: the group, its k
// diverse high-utility rating maps, and (in guided modes) the top-o
// next-step recommendations.
type StepResult struct {
	Desc       query.Description
	GroupSize  int
	NumMatched struct{ Reviewers, Items int }

	// Maps are the k selected rating maps, in descending DW-utility order;
	// Utilities aligns with Maps.
	Maps      []*ratingmap.RatingMap
	Utilities []float64
	// SetDiversity is the min-pairwise EMD of the selected set, and
	// AvgDiversity the mean pairwise EMD (the Table 5 metric).
	SetDiversity float64
	AvgDiversity float64

	Recommendations []Recommendation

	// Observability: pruning counters and timings.
	PrunedCI, PrunedMAB int
	Considered          int
	// Degraded reports anytime semantics: a step deadline (or request
	// cancellation) cut the engine's scan short after a phase boundary, so
	// Maps/Utilities rank candidates over the RecordsProcessed-record
	// prefix of the group, and recommendations may have been skipped.
	Degraded bool
	// RecordsProcessed counts the group records the engine folded in
	// before finalization (== GroupSize for a complete scan).
	RecordsProcessed int
	GenDuration      time.Duration
	RecDuration      time.Duration
	// RecOpDurations holds the sequential evaluation cost of each candidate
	// operation, letting benches derive parallel schedules for any core
	// count deterministically.
	RecOpDurations []time.Duration
	// TraceID is the correlation ID the step ran under (empty without one).
	TraceID string
	// Profile is the step's EXPLAIN record (always populated by StepCtx).
	Profile *StepProfile
}

// TotalUtility is Σ û over the displayed maps — the step's contribution to
// the Table 5 utility column, and Equation 2 when the step results from an
// operation.
func (s *StepResult) TotalUtility() float64 {
	sum := 0.0
	for _, u := range s.Utilities {
		sum += u
	}
	return sum
}

// RMSet solves Problem 1 for a description: generate the top k×l maps by DW
// utility (pruned per config), then select the k most diverse with GMM.
// The seen set is not mutated; callers commit displayed maps explicitly.
//
// RMSet is an XCtx compatibility shim: a context-free wrapper F that
// delegates to FCtx with context.Background(), keeping the pre-context
// API alive. Shims like this (RMSet, Session.Step,
// engine.Generator.TopMaps) are the only non-main, non-test call sites
// where the ctxflow analyzer permits minting a root context.
func (ex *Explorer) RMSet(desc query.Description, seen *ratingmap.SeenSet) (*StepResult, error) {
	return ex.RMSetCtx(context.Background(), desc, seen)
}

// RMSetCtx is RMSet with span propagation: under a context carrying an
// obs sink, the step's generation work is recorded as a "core.rmset"
// span whose children cover materialization and the engine's phases.
func (ex *Explorer) RMSetCtx(ctx context.Context, desc query.Description, seen *ratingmap.SeenSet) (*StepResult, error) {
	if err := ex.Query.Validate(desc); err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "core.rmset")
	span.SetAttr("selection", desc.String())
	defer span.End()
	_, mspan := obs.StartSpan(ctx, "query.materialize")
	group, err := ex.Query.Materialize(desc)
	if err != nil {
		mspan.End()
		return nil, err
	}
	mspan.SetAttr("records", group.Len())
	mspan.End()
	res, err := ex.rmSetForGroup(ctx, group, seen)
	if err != nil {
		return nil, err
	}
	res.GenDuration = time.Since(start)
	span.SetAttr("maps", len(res.Maps))
	return res, nil
}

func (ex *Explorer) rmSetForGroup(ctx context.Context, group *query.RatingGroup, seen *ratingmap.SeenSet) (*StepResult, error) {
	cfg := ex.Cfg
	cands := ex.Gen.Candidates(ex.Query, group.Desc)
	kPrime := cfg.K * cfg.L
	if cfg.DiversityOnly {
		kPrime = len(cands)
		if kPrime == 0 {
			kPrime = 1
		}
	}
	genRes, err := ex.Gen.TopMapsCtx(ctx, group, cands, seen, kPrime, cfg.Engine)
	if err != nil {
		return nil, err
	}
	sel := diversity.SelectDiverse(genRes.Maps, cfg.K, cfg.Distance)

	// Re-rank the selected subset by utility for display and recompute the
	// aligned utilities from the generator's ranking.
	utilOf := make(map[*ratingmap.RatingMap]float64, len(genRes.Maps))
	for i, rm := range genRes.Maps {
		utilOf[rm] = genRes.Utilities[i]
	}
	out := &StepResult{
		Desc:             group.Desc,
		GroupSize:        group.Len(),
		Maps:             sel,
		PrunedCI:         genRes.PrunedCI,
		PrunedMAB:        genRes.PrunedMAB,
		Considered:       genRes.Considered,
		Degraded:         genRes.Degraded,
		RecordsProcessed: genRes.RecordsProcessed,
		Profile: &StepProfile{
			GroupSize:        group.Len(),
			RecordsProcessed: genRes.RecordsProcessed,
			Engine:           genRes.Profile,
		},
		// Diversity is reported with pure EMD — a property of the data
		// shown — even when selection used an augmented distance.
		SetDiversity: diversity.SetDiversity(sel, diversity.EMD),
		AvgDiversity: diversity.AvgPairwiseDiversity(sel, diversity.EMD),
	}
	out.NumMatched.Reviewers = group.Reviewers.Count()
	out.NumMatched.Items = group.Items.Count()
	for _, rm := range sel {
		out.Utilities = append(out.Utilities, utilOf[rm])
	}
	return out, nil
}

// OperationUtility evaluates Equation 2 for a candidate operation: the sum
// of DW utilities of the k rating maps its target group would display. To
// keep recommendation building interactive, the group's records may be
// subsampled per Cfg.RecSampleSize.
func (ex *Explorer) OperationUtility(op query.Operation, seen *ratingmap.SeenSet) (float64, error) {
	group, err := ex.Query.Materialize(op.Target)
	if err != nil {
		return 0, err
	}
	if group.Len() == 0 {
		return 0, nil
	}
	records := group.Records
	if n := ex.Cfg.RecSampleSize; n > 0 && len(records) > n {
		records = sampleRecords(records, n)
		group = &query.RatingGroup{Desc: group.Desc, Records: records,
			Reviewers: group.Reviewers, Items: group.Items}
	}
	cands := ex.Gen.Candidates(ex.Query, op.Target)
	genRes, err := ex.Gen.TopMaps(group, cands, seen, ex.Cfg.K*ex.Cfg.L, ex.Cfg.Engine)
	if err != nil {
		return 0, err
	}
	sel := diversity.SelectDiverse(genRes.Maps, ex.Cfg.K, ex.Cfg.Distance)
	utilOf := make(map[*ratingmap.RatingMap]float64, len(genRes.Maps))
	for i, rm := range genRes.Maps {
		utilOf[rm] = genRes.Utilities[i]
	}
	sum := 0.0
	for _, rm := range sel {
		sum += utilOf[rm]
	}
	return sum, nil
}

// sampleRecords picks n records evenly spaced across the (sorted) record
// list — deterministic and order-preserving, which keeps repeated
// evaluations of the same operation stable.
func sampleRecords(records []int32, n int) []int32 {
	out := make([]int32, 0, n)
	step := float64(len(records)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, records[int(float64(i)*step)])
	}
	return out
}

// ParseDescription exposes the advanced-screen SQL predicate parser bound
// to this explorer's schemas.
func (ex *Explorer) ParseDescription(input string) (query.Description, error) {
	return query.ParseDescription(input, ex.Query)
}

// DictFor returns the display dictionary for a rating map's grouping
// attribute, for rendering.
func (ex *Explorer) DictFor(rm *ratingmap.RatingMap) ratingmap.Dict {
	var t *dataset.EntityTable
	if rm.Side == query.ReviewerSide {
		t = ex.DB.Reviewers
	} else {
		t = ex.DB.Items
	}
	d := t.DictByName(rm.Attr)
	if d == nil {
		return nil
	}
	return d
}

// RenderMap formats a rating map with value labels resolved.
func (ex *Explorer) RenderMap(rm *ratingmap.RatingMap) string {
	if rm == nil {
		return "<nil rating map>"
	}
	return rm.Render(ex.DictFor(rm))
}

// ExplainMap reports why a rating map scores: its four criterion values and
// the winning criterion — the attribution behind the max-aggregated
// utility, shown by the CLI's "why" command.
func (ex *Explorer) ExplainMap(rm *ratingmap.RatingMap, seen *ratingmap.SeenSet) (scores ratingmap.Scores, winner ratingmap.Criterion) {
	scores = ratingmap.ComputeScoresOpt(rm, seen, 1, ex.Cfg.Engine.Utility.Peculiarity)
	winner, _ = scores.Best()
	return scores, winner
}

func (ex *Explorer) String() string {
	return fmt.Sprintf("Explorer(%s: %d reviewers, %d items, %d ratings)",
		ex.DB.Name, ex.DB.Reviewers.Len(), ex.DB.Items.Len(), ex.DB.Ratings.Len())
}
