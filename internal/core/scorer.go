package core

import (
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// OperationScorer ranks candidate next-step operations. The default scorer
// is Equation 2 (the sum of DW utilities of the rating maps the operation's
// group would display); the paper notes (§5.2.2) that "due to the modular
// nature of SubDEx the Recommendation Builder may be replaced with
// alternative implementations, yielding personalized recommendations using
// logs of previous operations, or user feedback" — this interface is that
// replacement point.
type OperationScorer interface {
	// ScoreOperation returns the utility of applying op given the maps the
	// user has already seen.
	ScoreOperation(ex *Explorer, op query.Operation, seen *ratingmap.SeenSet) (float64, error)
}

// EquationTwoScorer is the paper's ranking: u(q, RM) = Σ û(rm, RM) over the
// k rating maps of q's target group.
type EquationTwoScorer struct{}

// ScoreOperation evaluates Equation 2.
func (EquationTwoScorer) ScoreOperation(ex *Explorer, op query.Operation, seen *ratingmap.SeenSet) (float64, error) {
	return ex.OperationUtility(op, seen)
}

// LogAffinityScorer personalizes Equation 2 with a log of the user's past
// operations: candidates touching attributes the user has shown interest in
// get boosted, the way log-based recommenders (Eirinaki et al. [23], Milo &
// Somech [42]) exploit session history. The boost is multiplicative:
//
//	score = eq2 × (1 + Alpha × affinity)
//
// where affinity ∈ [0,1] is the fraction of the operation's touched
// attributes that appear in the log.
type LogAffinityScorer struct {
	// Alpha controls the personalization strength; 0 degrades to Eq. 2.
	Alpha float64

	attrUse map[string]int
	total   int
}

// Observe records an applied operation into the log. Operations carrying
// no explicit delta (e.g. a selection typed into the advanced screen)
// contribute every attribute of their target selection.
func (l *LogAffinityScorer) Observe(op query.Operation) {
	if l.attrUse == nil {
		l.attrUse = make(map[string]int)
	}
	attrs := touchedAttrs(op)
	if len(attrs) == 0 {
		for _, sel := range op.Target.Selectors() {
			attrs = append(attrs, sel.Side.String()+"."+sel.Attr)
		}
	}
	for _, attr := range attrs {
		l.attrUse[attr]++
		l.total++
	}
}

// ScoreOperation boosts Equation 2 by the operation's attribute affinity
// with the observed log.
func (l *LogAffinityScorer) ScoreOperation(ex *Explorer, op query.Operation, seen *ratingmap.SeenSet) (float64, error) {
	base, err := ex.OperationUtility(op, seen)
	if err != nil {
		return 0, err
	}
	if l.total == 0 || l.Alpha == 0 {
		return base, nil
	}
	touched := touchedAttrs(op)
	if len(touched) == 0 {
		return base, nil
	}
	hits := 0
	for _, attr := range touched {
		if l.attrUse[attr] > 0 {
			hits++
		}
	}
	affinity := float64(hits) / float64(len(touched))
	return base * (1 + l.Alpha*affinity), nil
}

// touchedAttrs lists the side-qualified attributes an operation acts on.
func touchedAttrs(op query.Operation) []string {
	var out []string
	add := func(s *query.Selector) {
		if s != nil {
			out = append(out, s.Side.String()+"."+s.Attr)
		}
	}
	add(op.Added)
	add(op.Removed)
	add(op.Changed)
	return out
}
