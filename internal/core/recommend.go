package core

import (
	"sort"
	"sync"
	"time"

	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Recommendation is one ranked next-step operation with its Equation 2
// utility.
type Recommendation struct {
	Op      query.Operation
	Utility float64
}

// RecommendationBuilder implements §4.3: for each displayed rating map it
// derives candidate operations (small adjustments to the current selection,
// differing in at most two attribute-value pairs, biased toward the map's
// own subgroups), evaluates each candidate's utility, and the SDE Engine
// merges the per-map top-o lists into the overall top-o.
type RecommendationBuilder struct {
	Ex *Explorer
}

// evaluated pairs an operation with its computed utility and cost.
type evaluated struct {
	op       query.Operation
	utility  float64
	duration time.Duration
	err      error
}

// Recommend returns the overall top-o recommendations for the current
// description given the displayed maps. Candidate evaluation runs on
// Cfg.RecWorkers goroutines — the paper's parallel Recommendation Builder;
// with RecWorkers ≤ 1 it degrades to the No-Parallelism baseline. The
// returned durations list the sequential cost of every evaluated candidate,
// letting benches derive schedules for arbitrary core counts.
func (rb *RecommendationBuilder) Recommend(cur query.Description, maps []*ratingmap.RatingMap,
	seen *ratingmap.SeenSet, o int) ([]Recommendation, []time.Duration, error) {
	ops, err := rb.CandidateOps(cur, maps)
	if err != nil {
		return nil, nil, err
	}
	if len(ops) == 0 {
		return nil, nil, nil
	}

	var scorer OperationScorer = EquationTwoScorer{}
	if rb.Ex.Cfg.Scorer != nil {
		scorer = rb.Ex.Cfg.Scorer
	}
	results := make([]evaluated, len(ops))
	workers := rb.Ex.Cfg.RecWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				u, err := scorer.ScoreOperation(rb.Ex, ops[i], seen)
				results[i] = evaluated{op: ops[i], utility: u, duration: time.Since(start), err: err}
			}
		}()
	}
	for i := range ops {
		next <- i
	}
	close(next)
	wg.Wait()

	durations := make([]time.Duration, 0, len(results))
	var recs []Recommendation
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		durations = append(durations, r.duration)
		recs = append(recs, Recommendation{Op: r.op, Utility: r.utility})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Utility > recs[j].Utility })
	if o > 0 && len(recs) > o {
		recs = recs[:o]
	}
	return recs, durations, nil
}

// CandidateOps enumerates the candidate operations of a step. Per §4.3 a
// candidate differs from the current selection in at most two
// attribute-value pairs: it may add any one attribute-value pair, and may
// additionally remove or change one existing pair. Pure removals and pure
// changes are included. The two-pair combinations are anchored on the
// displayed maps (filtering into a map's subgroup while adjusting one
// existing pair), which is how the paper's Recommendation Builder
// associates candidates with rating maps. Duplicate targets are merged.
func (rb *RecommendationBuilder) CandidateOps(cur query.Description, maps []*ratingmap.RatingMap) ([]query.Operation, error) {
	lim := rb.Ex.Cfg.Limits
	seen := map[string]bool{cur.Key(): true}
	var ops []query.Operation
	add := func(op query.Operation) bool {
		k := op.Target.Key()
		if seen[k] {
			return true
		}
		seen[k] = true
		ops = append(ops, op)
		return lim.MaxCandidates == 0 || len(ops) < lim.MaxCandidates
	}

	// All single-pair filter additions over unbound attributes. The
	// per-attribute value cap deliberately does not apply here: single-pair
	// candidates are the cheap, load-bearing ones, and truncating the value
	// list would hide exactly the operations the user needs.
	for _, side := range []query.Side{query.ReviewerSide, query.ItemSide} {
		var t = rb.Ex.DB.Reviewers
		if side == query.ItemSide {
			t = rb.Ex.DB.Items
		}
		for a := 0; a < t.Schema.Len(); a++ {
			attr := t.Schema.At(a).Name
			if cur.BindsAttr(side, attr) {
				continue
			}
			values := t.Dict(a).Values()
			for _, v := range values {
				sel := query.Selector{Side: side, Attr: attr, Value: v}
				target, err := cur.With(sel)
				if err != nil {
					continue
				}
				s := sel
				if !add(query.Operation{Kind: query.Filter, Target: target, Added: &s}) {
					return ops, nil
				}
			}
		}
	}

	// Map-anchored drill-downs: filter to each subgroup of each displayed
	// map, optionally combined with one removal or change.
	for _, rm := range maps {
		dict := rb.dictOf(rm)
		values := rm.Subgroups
		if lim.MaxValuesPerAttribute > 0 && len(values) > lim.MaxValuesPerAttribute {
			values = values[:lim.MaxValuesPerAttribute]
		}
		for i := range values {
			label := dict.Value(values[i].Value)
			if label == dataset.MissingLabel {
				continue
			}
			sel := query.Selector{Side: rm.Side, Attr: rm.Attr, Value: label}
			if cur.BindsAttr(sel.Side, sel.Attr) {
				continue
			}
			target, err := cur.With(sel)
			if err != nil {
				continue
			}
			s := sel
			if !add(query.Operation{Kind: query.Filter, Target: target, Added: &s}) {
				return ops, nil
			}
			if !lim.IncludeCombined {
				continue
			}
			for _, old := range cur.Selectors() {
				old := old
				if t2, err := target.Without(old); err == nil {
					if !add(query.Operation{Kind: query.FilterGeneralize, Target: t2, Added: &s, Removed: &old}) {
						return ops, nil
					}
				}
				vals, err := rb.Ex.Query.AttributeValues(old.Side, old.Attr)
				if err != nil {
					return nil, err
				}
				if lim.MaxValuesPerAttribute > 0 && len(vals) > lim.MaxValuesPerAttribute {
					vals = vals[:lim.MaxValuesPerAttribute]
				}
				for _, v := range vals {
					if v == old.Value {
						continue
					}
					if t2, err := target.WithChanged(old, v); err == nil {
						if !add(query.Operation{Kind: query.FilterChange, Target: t2, Added: &s, Changed: &old, ChangedTo: v}) {
							return ops, nil
						}
					}
				}
			}
		}
	}

	// Pure roll-ups and sideways moves on the current description — SDD and
	// Qagview cannot produce these, which Table 4 shows matters.
	for _, old := range cur.Selectors() {
		old := old
		if target, err := cur.Without(old); err == nil {
			if !add(query.Operation{Kind: query.Generalize, Target: target, Removed: &old}) {
				return ops, nil
			}
		}
		vals, err := rb.Ex.Query.AttributeValues(old.Side, old.Attr)
		if err != nil {
			return nil, err
		}
		if lim.MaxValuesPerAttribute > 0 && len(vals) > lim.MaxValuesPerAttribute {
			vals = vals[:lim.MaxValuesPerAttribute]
		}
		for _, v := range vals {
			if v == old.Value {
				continue
			}
			if target, err := cur.WithChanged(old, v); err == nil {
				if !add(query.Operation{Kind: query.Change, Target: target, Changed: &old, ChangedTo: v}) {
					return ops, nil
				}
			}
		}
	}
	return ops, nil
}

// dictOf resolves the value dictionary of a map's grouping attribute.
func (rb *RecommendationBuilder) dictOf(rm *ratingmap.RatingMap) *dataset.Dictionary {
	var t *dataset.EntityTable
	if rm.Side == query.ReviewerSide {
		t = rb.Ex.DB.Reviewers
	} else {
		t = rb.Ex.DB.Items
	}
	return t.DictByName(rm.Attr)
}
