package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"subdex/internal/query"
)

// TestAutoShimWalks covers the context-free Auto shim: a Fully-Automated
// session advances by following the top-1 recommendation each step.
func TestAutoShimWalks(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, FullyAutomated, mustParse(t, ex, ""))
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sess.Auto(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("Auto(3) executed %d steps, want 3", len(steps))
	}
	if steps[1].Desc.Equal(steps[0].Desc) {
		t.Error("auto-pilot did not move: step 2 shows the same selection as step 1")
	}
}

// TestAutoCtxRejectsUserDriven pins the mode check on the ctx-first path.
func TestAutoCtxRejectsUserDriven(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, UserDriven, mustParse(t, ex, ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AutoCtx(context.Background(), 2); err == nil {
		t.Fatal("AutoCtx must reject User-Driven sessions")
	}
}

// TestAutoCtxCancelledUpFront: a dead context yields no steps and the
// context's error — the engine refuses to serve anything pre-first-phase.
func TestAutoCtxCancelledUpFront(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, FullyAutomated, mustParse(t, ex, ""))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	steps, err := sess.AutoCtx(ctx, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(steps) != 0 {
		t.Fatalf("cancelled-up-front AutoCtx returned %d steps, want 0", len(steps))
	}
}

// TestAutoCtxStopsMidWalk cancels the auto-pilot's context from inside the
// engine (via the PhaseHook fault-injection seam) after the first step's
// display has been generated. The first step completes — its
// recommendation pass runs under the shim's own root context — and the
// second step fails pre-first-phase, so AutoCtx returns exactly the
// one-step prefix plus the cancellation error.
func TestAutoCtxStopsMidWalk(t *testing.T) {
	ex := coreExplorer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var topMapsCalls atomic.Int64
	ex.Cfg.Engine.PhaseHook = func(_ context.Context, phase int) {
		if phase != 0 {
			return
		}
		// Call 1 is step 1's display; call 2 is the first recommendation
		// evaluation. Cancelling there leaves step 1 intact and kills the
		// walk before step 2 can serve anything.
		if topMapsCalls.Add(1) == 2 {
			cancel()
		}
	}
	sess, err := NewSession(ex, FullyAutomated, mustParse(t, ex, ""))
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sess.AutoCtx(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(steps) != 1 {
		t.Fatalf("mid-walk cancellation returned %d steps, want the 1-step prefix", len(steps))
	}
	if steps[0].Degraded {
		t.Error("the completed first step must not be marked degraded")
	}
	if len(steps[0].Recommendations) == 0 {
		t.Error("the completed first step must carry recommendations (they run under the shim's root context)")
	}
}

func mustParse(t testing.TB, ex *Explorer, predicate string) query.Description {
	t.Helper()
	desc, err := ex.ParseDescription(predicate)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}
