// Package core assembles SubDEx's SDE framework (§3.3, §4): the SDE Engine
// that materializes rating groups, the RM-Set Generator that solves the
// Diverse Rating Map Set Selection problem (Problem 1) by generating the
// top k×l dimension-weighted-utility maps and GMM-selecting the k most
// diverse, the Recommendation Builder that solves the Next-Step
// Recommendations problem (Problem 2), and sessions in the three
// exploration modes: User-Driven, Recommendation-Powered, Fully-Automated.
package core

import (
	"time"

	"subdex/internal/diversity"
	"subdex/internal/engine"
	"subdex/internal/query"
)

// Config carries the system parameters of the paper's Table 3 plus the
// engine and candidate-enumeration knobs.
type Config struct {
	// K is the number of rating maps displayed per step (default 3).
	K int
	// O is the number of next-step recommendations (default 3).
	O int
	// L is the pruning-diversity factor (default 3): the generator keeps
	// K×L maps, from which the K most diverse are selected. L=1 degenerates
	// to utility-only selection.
	L int
	// DiversityOnly ranks nothing by utility: the GMM selection runs over
	// all candidates (the "Diversity-Only" arm of Table 5).
	DiversityOnly bool
	// Engine configures the phase/pruning machinery.
	Engine engine.Config
	// Distance is the rating-map distance for diversity selection. The
	// default augments EMD with a small different-attribute/different-
	// dimension bonus (diversity.EMDWithAttribute): the paper observes that
	// EMD over rating distributions already favors different attributes on
	// its datasets; on synthetic data the explicit bonus is needed for the
	// same effect. Reported diversity numbers always use pure EMD.
	Distance diversity.Distance
	// Limits bound candidate-operation enumeration.
	Limits query.CandidateLimits
	// RecWorkers is the number of candidate operations evaluated
	// simultaneously by the Recommendation Builder; the paper sets it to
	// the number of cores. ≤1 is the No-Parallelism/Naive behaviour.
	RecWorkers int
	// RecSampleSize caps how many records of a candidate operation's group
	// are scanned when estimating its utility (0 = all). Sampling follows
	// the scalable-visualization practice the paper cites [36].
	RecSampleSize int
	// Scorer ranks candidate operations; nil selects Equation 2. Plug a
	// LogAffinityScorer (or any OperationScorer) here for personalized
	// recommendations, the replacement point §5.2.2 describes.
	Scorer OperationScorer
	// StepTimeout bounds the compute time of one exploration step
	// (Session.StepCtx); 0 (the default) is unlimited. When the deadline
	// hits after the engine's first phase boundary the step degrades to an
	// anytime result (StepResult.Degraded) instead of failing; before any
	// phase completes StepCtx returns context.DeadlineExceeded. The
	// recommendation pass is skipped entirely once the deadline has
	// passed — it would start a fresh full-cost computation.
	StepTimeout time.Duration
	// GroupCacheRecords budgets the query engine's materialization cache
	// (total cached rating-record count; 0 selects the default, negative
	// disables). Candidate-operation evaluation revisits many selections;
	// the cache trades memory for repeated scans (cf. Data Canopy [57]).
	GroupCacheRecords int
	// Scanner, when non-nil, makes the RM-Generator scan record ranges
	// through a distributed backend (internal/cluster's coordinator)
	// instead of this process's sharded scan — bit-identical results by
	// Merge associativity, degraded anytime results on partition loss.
	// A scheduling knob like Engine.Workers: deliberately excluded from
	// the engine-config fingerprint, so a coordinator and its workers
	// (which run scanner-less) agree on fingerprints. NewExplorer binds
	// the explorer's fingerprint to the scanner when it exposes
	// BindFingerprint(string), arming the mixed-version cluster guard.
	Scanner engine.RangeScanner
	// EngineCacheRecords budgets the RM-Generator's cross-step
	// accumulator cache (total cached record count; 0 selects the
	// default, negative disables). Sessions thread this cache across
	// steps: a filter→generalize→filter walk that returns to an earlier
	// selection — and the Recommendation Builder's repeated evaluation of
	// overlapping candidate operations — skips the aggregation scan and
	// re-finalizes the exact cached histograms against the current seen
	// set, so cached and uncached steps return identical results. Set
	// Engine.ExactOnCacheMiss to additionally make large pruned steps
	// cacheable (exact scan on miss, zero scan on revisit).
	EngineCacheRecords int
}

// DefaultConfig returns the Table 3 defaults with both pruning schemes and
// a worker per configured core.
func DefaultConfig() Config {
	return Config{
		K:                  3,
		O:                  3,
		L:                  3,
		Engine:             engine.DefaultConfig(),
		Distance:           diversity.EMDWithAttribute,
		Limits:             query.DefaultCandidateLimits(),
		RecWorkers:         1,
		RecSampleSize:      2000,
		GroupCacheRecords:  500_000,
		EngineCacheRecords: 1_000_000,
	}
}

// normalized fills defaults for zero fields so a partially specified Config
// behaves sensibly.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.O <= 0 {
		c.O = d.O
	}
	if c.L <= 0 {
		c.L = d.L
	}
	if c.Engine.Phases <= 0 {
		c.Engine = d.Engine
	}
	if c.Distance == nil {
		c.Distance = d.Distance
	}
	if c.RecWorkers <= 0 {
		c.RecWorkers = 1
	}
	if c.GroupCacheRecords == 0 {
		c.GroupCacheRecords = d.GroupCacheRecords
	}
	if c.EngineCacheRecords == 0 {
		c.EngineCacheRecords = d.EngineCacheRecords
	}
	return c
}

// Mode is an exploration mode (§3.3).
type Mode int

const (
	// UserDriven shows rating maps only; the user provides operations.
	UserDriven Mode = iota
	// RecommendationPowered shows rating maps plus top-o next-step
	// recommendations; the user picks one or provides her own operation.
	RecommendationPowered
	// FullyAutomated applies the top-1 recommendation at every step for a
	// fixed-length path.
	FullyAutomated
)

func (m Mode) String() string {
	switch m {
	case UserDriven:
		return "User-Driven"
	case RecommendationPowered:
		return "Recommendation-Powered"
	case FullyAutomated:
		return "Fully-Automated"
	default:
		return "Mode(?)"
	}
}
