package core

import (
	"context"
	"testing"
	"time"

	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

func coreDB(t testing.TB) *dataset.DB {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 3, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func coreExplorer(t testing.TB) *Explorer {
	t.Helper()
	ex, err := NewExplorer(coreDB(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestNewExplorerRequiresFrozen(t *testing.T) {
	db := coreDB(t)
	raw := dataset.NewDB("unfrozen", db.Reviewers, db.Items, db.Ratings)
	if _, err := NewExplorer(raw, DefaultConfig()); err == nil {
		t.Fatal("unfrozen database must be rejected")
	}
}

func TestNewExplorerDisablesDWForSingleDimension(t *testing.T) {
	db, err := gen.Movielens(gen.Config{Seed: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Cfg.Engine.Utility.DisableDimensionWeights {
		t.Fatal("single-dimension database must disable dimension weights")
	}
}

func TestConfigNormalization(t *testing.T) {
	ex, err := NewExplorer(coreDB(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cfg.K != 3 || ex.Cfg.O != 3 || ex.Cfg.L != 3 {
		t.Errorf("zero config must normalize to Table 3 defaults: %+v", ex.Cfg)
	}
	if ex.Cfg.Distance == nil {
		t.Error("distance must default")
	}
}

func TestRMSetBasics(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != ex.Cfg.K {
		t.Fatalf("maps = %d, want %d", len(res.Maps), ex.Cfg.K)
	}
	if len(res.Utilities) != len(res.Maps) {
		t.Fatal("utilities misaligned")
	}
	if res.GroupSize != ex.DB.Ratings.Len() {
		t.Errorf("root group size = %d, want %d", res.GroupSize, ex.DB.Ratings.Len())
	}
	// Seen must NOT be mutated by RMSet (callers commit explicitly).
	if seen.Total() != 0 {
		t.Error("RMSet must not commit maps to the seen set")
	}
	// Distinct maps.
	keys := map[ratingmap.Key]bool{}
	for _, rm := range res.Maps {
		if keys[rm.Key] {
			t.Errorf("duplicate map %v selected", rm.Key)
		}
		keys[rm.Key] = true
	}
}

func TestRMSetValidatesDescription(t *testing.T) {
	ex := coreExplorer(t)
	bad := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "nope", Value: "x"})
	if _, err := ex.RMSet(bad, ratingmap.NewSeenSet()); err == nil {
		t.Fatal("invalid description must be rejected")
	}
}

func TestOperationUtilityRanksAnomalies(t *testing.T) {
	// Plant an irregular group; the op drilling into it must outrank a
	// random neutral op. This is the signal Problem 2 depends on.
	db := coreDB(t)
	groups, err := gen.PlantIrregularGroups(db, 77, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := ratingmap.NewSeenSet()
	var anomalous query.Description
	for _, g := range groups {
		if g.Side == query.ItemSide {
			anomalous = query.MustDescription(g.Selectors[0])
		}
	}
	if anomalous.IsEmpty() {
		t.Skip("no item-side group planted")
	}
	uAnom, err := ex.OperationUtility(query.Operation{Target: anomalous}, seen)
	if err != nil {
		t.Fatal(err)
	}
	if uAnom <= 0 {
		t.Fatalf("anomalous op utility = %v, want positive", uAnom)
	}
}

func TestOperationUtilityEmptyGroup(t *testing.T) {
	ex := coreExplorer(t)
	// Conjunction chosen to be empty: two different cities can't both hold
	// on the reviewer side… instead pick a selective pair that yields 0.
	d := query.MustDescription(
		query.Selector{Side: query.ReviewerSide, Attr: "membership", Value: "elite"},
		query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "unspecified"},
		query.Selector{Side: query.ReviewerSide, Attr: "occupation", Value: "chef"},
		query.Selector{Side: query.ReviewerSide, Attr: "age_group", Value: "teen"},
	)
	u, err := ex.OperationUtility(query.Operation{Target: d}, ratingmap.NewSeenSet())
	if err != nil {
		t.Fatal(err)
	}
	if u < 0 {
		t.Errorf("utility must be non-negative, got %v", u)
	}
}

func TestSessionStepAndRecommendations(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 || len(res.Recommendations) > ex.Cfg.O {
		t.Fatalf("recommendations = %d, want 1..%d", len(res.Recommendations), ex.Cfg.O)
	}
	for i := 1; i < len(res.Recommendations); i++ {
		if res.Recommendations[i].Utility > res.Recommendations[i-1].Utility+1e-9 {
			t.Fatal("recommendations not sorted by utility")
		}
	}
	// The step must have committed its maps to the history.
	if sess.Seen().Total() != len(res.Maps) {
		t.Errorf("seen = %d, want %d", sess.Seen().Total(), len(res.Maps))
	}
	if err := sess.ApplyRecommendation(0); err != nil {
		t.Fatal(err)
	}
	if sess.Current().IsEmpty() {
		t.Error("applying a recommendation must change the description")
	}
}

func TestSessionUserDrivenHasNoRecommendations(t *testing.T) {
	ex := coreExplorer(t)
	sess, _ := NewSession(ex, UserDriven, query.Description{})
	res, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 0 {
		t.Fatal("User-Driven steps must not compute recommendations")
	}
	if err := sess.ApplyRecommendation(0); err == nil {
		t.Fatal("ApplyRecommendation without recommendations must fail")
	}
}

func TestSessionAuto(t *testing.T) {
	ex := coreExplorer(t)
	sess, _ := NewSession(ex, FullyAutomated, query.Description{})
	steps, err := sess.Auto(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || len(steps) > 3 {
		t.Fatalf("auto steps = %d", len(steps))
	}
	if sess.NumSteps() != len(steps) {
		t.Error("session step log inconsistent")
	}
	// Descriptions should change along the path.
	if len(steps) >= 2 && steps[0].Desc.Equal(steps[1].Desc) {
		t.Error("auto path did not move")
	}
	// User-Driven sessions reject Auto.
	ud, _ := NewSession(ex, UserDriven, query.Description{})
	if _, err := ud.Auto(2); err == nil {
		t.Fatal("Auto must require a guided mode")
	}
}

func TestSessionSummarize(t *testing.T) {
	ex := coreExplorer(t)
	sess, _ := NewSession(ex, FullyAutomated, query.Description{})
	if _, err := sess.Auto(2); err != nil {
		t.Fatal(err)
	}
	sum := sess.Summarize()
	if sum.Steps != sess.NumSteps() {
		t.Errorf("Steps = %d, want %d", sum.Steps, sess.NumSteps())
	}
	if sum.TotalUtility <= 0 {
		t.Error("total utility must be positive")
	}
	if sum.DistinctAttributes == 0 {
		t.Error("distinct attributes must be counted")
	}
	total := 0
	for _, n := range sum.MapsPerDimension {
		total += n
	}
	if total != sum.Steps*ex.Cfg.K {
		t.Errorf("maps per dimension total = %d, want %d", total, sum.Steps*ex.Cfg.K)
	}
}

func TestCandidateOpsDeduplicate(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		t.Fatal(err)
	}
	rb := RecommendationBuilder{Ex: ex}
	ops, err := rb.CandidateOps(query.Description{}, res.Maps)
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, op := range ops {
		k := op.Target.Key()
		if targets[k] {
			t.Fatalf("duplicate candidate target %s", op.Target)
		}
		targets[k] = true
		if op.Target.Equal(query.Description{}) {
			t.Fatal("the current description must not be a candidate")
		}
	}
}

func TestCandidateOpsIncludeRollUps(t *testing.T) {
	ex := coreExplorer(t)
	cur := query.MustDescription(
		query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"})
	rb := RecommendationBuilder{Ex: ex}
	ops, err := rb.CandidateOps(cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	hasRollUp := false
	for _, op := range ops {
		if op.Kind == query.Generalize {
			hasRollUp = true
		}
	}
	if !hasRollUp {
		t.Fatal("candidates must include roll-ups — the Table 4 differentiator")
	}
}

func TestRecommendRespectsMaxCandidates(t *testing.T) {
	db := coreDB(t)
	cfg := DefaultConfig()
	cfg.Limits.MaxCandidates = 5
	ex, err := NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb := RecommendationBuilder{Ex: ex}
	recs, durs, err := rb.Recommend(query.Description{}, nil, ratingmap.NewSeenSet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) > 5 {
		t.Fatalf("evaluated %d candidates, cap is 5", len(durs))
	}
	if len(recs) > 3 {
		t.Fatalf("recs = %d, want ≤ 3", len(recs))
	}
}

func TestRecommendParallelMatchesSequential(t *testing.T) {
	db := coreDB(t)
	cfgSeq := DefaultConfig()
	cfgSeq.Limits.MaxCandidates = 30
	cfgPar := cfgSeq
	cfgPar.RecWorkers = 4

	exSeq, _ := NewExplorer(db, cfgSeq)
	exPar, _ := NewExplorer(db, cfgPar)
	rbSeq := RecommendationBuilder{Ex: exSeq}
	rbPar := RecommendationBuilder{Ex: exPar}

	a, _, err := rbSeq.Recommend(query.Description{}, nil, ratingmap.NewSeenSet(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := rbPar.Recommend(query.Description{}, nil, ratingmap.NewSeenSet(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op.Target.Key() != b[i].Op.Target.Key() {
			t.Fatalf("rec %d differs: %s vs %s", i, a[i].Op.Target, b[i].Op.Target)
		}
	}
}

func TestRenderMapNil(t *testing.T) {
	ex := coreExplorer(t)
	if got := ex.RenderMap(nil); got == "" {
		t.Error("nil map must render a placeholder")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		UserDriven: "User-Driven", RecommendationPowered: "Recommendation-Powered",
		FullyAutomated: "Fully-Automated",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestExplainMap(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		t.Fatal(err)
	}
	scores, winner := ex.ExplainMap(res.Maps[0], seen)
	if winner < 0 || winner >= ratingmap.NumCriteria {
		t.Fatalf("winner out of range: %v", winner)
	}
	for c := ratingmap.Criterion(0); c < ratingmap.NumCriteria; c++ {
		if scores[c] > scores[winner] {
			t.Fatalf("criterion %v (%v) beats reported winner %v (%v)",
				c, scores[c], winner, scores[winner])
		}
	}
}

// TestStepTimeoutDegrades covers the Config.StepTimeout contract: when
// the deadline fires after the engine's first phase boundary (forced
// deterministically by a PhaseHook that stalls phase 1 until the
// deadline), the step succeeds with Degraded set, RecordsProcessed
// reporting the scanned prefix, and the recommendation pass skipped.
func TestStepTimeoutDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepTimeout = 50 * time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Second):
				// Unreachable under a working deadline; bounds the test.
			}
		}
	}
	ex, err := NewExplorer(coreDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Step()
	if err != nil {
		t.Fatalf("deadline past the first phase must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Error("step not marked degraded")
	}
	if res.RecordsProcessed <= 0 || res.RecordsProcessed >= res.GroupSize {
		t.Errorf("RecordsProcessed = %d, want a strict prefix of %d",
			res.RecordsProcessed, res.GroupSize)
	}
	if len(res.Recommendations) != 0 {
		t.Error("recommendation pass must be skipped once the deadline passed")
	}
	if len(res.Maps) == 0 {
		t.Error("degraded step must still display maps")
	}
}

// TestStepNoTimeoutNotDegraded pins that unlimited-budget steps never
// report degradation.
func TestStepNoTimeoutNotDegraded(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, UserDriven, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("step without a deadline reported degraded")
	}
	if res.RecordsProcessed != res.GroupSize {
		t.Errorf("RecordsProcessed = %d, want full scan of %d", res.RecordsProcessed, res.GroupSize)
	}
}
