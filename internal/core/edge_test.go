package core

import (
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// degenerateDB builds a minimal database: 1 reviewer, 1 item, 1 record, one
// single-valued attribute per side — the smallest input the explorer must
// survive.
func degenerateDB(t *testing.T) *dataset.DB {
	t.Helper()
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "g"})
	is, _ := dataset.NewSchema(dataset.Attribute{Name: "c"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	reviewers.AppendRow("u1", map[string]string{"g": "only"}, nil)
	items.AppendRow("i1", map[string]string{"c": "one"}, nil)
	rt, _ := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 5})
	rt.Append(0, 0, []dataset.Score{3})
	db := dataset.NewDB("degenerate", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExplorerOnDegenerateDB(t *testing.T) {
	db := degenerateDB(t)
	ex, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.RMSet(query.Description{}, ratingmap.NewSeenSet())
	if err != nil {
		t.Fatal(err)
	}
	// Single-valued attributes cannot be grouped (1-bar partitions are
	// excluded), so no maps is the correct answer — not a crash.
	if len(res.Maps) != 0 {
		t.Logf("degenerate DB produced %d maps (acceptable)", len(res.Maps))
	}
	if res.GroupSize != 1 {
		t.Errorf("group size = %d, want 1", res.GroupSize)
	}
}

func TestSessionOnDegenerateDB(t *testing.T) {
	db := degenerateDB(t)
	ex, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatalf("step on degenerate DB: %v", err)
	}
	// Auto must terminate gracefully even with nothing to recommend.
	fa, _ := NewSession(ex, FullyAutomated, query.Description{})
	steps, err := fa.Auto(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("at least the first step must run")
	}
}

// zeroRecordDB has entities but no rating records at all.
func zeroRecordDB(t *testing.T) *dataset.DB {
	t.Helper()
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "g"})
	is, _ := dataset.NewSchema(dataset.Attribute{Name: "c"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	reviewers.AppendRow("u1", map[string]string{"g": "a"}, nil)
	reviewers.AppendRow("u2", map[string]string{"g": "b"}, nil)
	items.AppendRow("i1", map[string]string{"c": "x"}, nil)
	items.AppendRow("i2", map[string]string{"c": "y"}, nil)
	rt, _ := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 5})
	db := dataset.NewDB("empty-ratings", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExplorerOnZeroRecords(t *testing.T) {
	db := zeroRecordDB(t)
	ex, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.RMSet(query.Description{}, ratingmap.NewSeenSet())
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupSize != 0 {
		t.Errorf("group size = %d, want 0", res.GroupSize)
	}
	// Recommendations over an empty database must not error.
	rb := RecommendationBuilder{Ex: ex}
	if _, _, err := rb.Recommend(query.Description{}, res.Maps, ratingmap.NewSeenSet(), 3); err != nil {
		t.Fatalf("recommend on empty: %v", err)
	}
}

func TestApplyInvalidDescription(t *testing.T) {
	db := degenerateDB(t)
	ex, _ := NewExplorer(db, DefaultConfig())
	sess, _ := NewSession(ex, UserDriven, query.Description{})
	bad := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "missing", Value: "x"})
	if err := sess.ApplyDescription(bad); err == nil {
		t.Fatal("invalid description must be rejected")
	}
	if !sess.Current().IsEmpty() {
		t.Fatal("failed apply must not move the session")
	}
	if sess.Back() {
		t.Fatal("failed apply must not pollute history")
	}
}

func TestNewSessionValidatesStart(t *testing.T) {
	db := degenerateDB(t)
	ex, _ := NewExplorer(db, DefaultConfig())
	bad := query.MustDescription(query.Selector{Side: query.ItemSide, Attr: "missing", Value: "x"})
	if _, err := NewSession(ex, UserDriven, bad); err == nil {
		t.Fatal("invalid start description must be rejected")
	}
}
