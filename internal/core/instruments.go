package core

import (
	"time"

	"subdex/internal/engine"
	"subdex/internal/obs"
)

// Instruments bundles the SDE Engine's telemetry: session and step
// counters, latency histograms for step execution and recommendation
// scoring, and the RM-Generator's hot-path metrics. A nil *Instruments
// is a no-op everywhere, so explorers without observability pay nothing.
type Instruments struct {
	// SessionsStarted counts NewSession calls
	// (subdex_sessions_started_total).
	SessionsStarted *obs.Counter
	// StepsTotal counts executed exploration steps (subdex_steps_total).
	StepsTotal *obs.Counter
	// StepsDegraded counts steps that returned anytime (deadline-degraded)
	// results (subdex_steps_degraded_total).
	StepsDegraded *obs.Counter
	// StepLatency is the end-to-end per-step histogram in seconds —
	// the paper's §6 interactive-speed signal
	// (subdex_step_duration_seconds).
	StepLatency *obs.Histogram
	// GenLatency times rating-map generation within a step
	// (subdex_generation_duration_seconds).
	GenLatency *obs.Histogram
	// RecLatency times recommendation scoring within a step
	// (subdex_recommendation_duration_seconds).
	RecLatency *obs.Histogram
	// RecCandidates counts candidate operations evaluated by the
	// Recommendation Builder (subdex_recommendation_candidates_total).
	RecCandidates *obs.Counter
	// Engine carries the RM-Generator metrics.
	Engine *engine.Metrics
}

// NewInstruments registers the core instruments on r (nil r → nil).
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		SessionsStarted: r.Counter("subdex_sessions_started_total",
			"Exploration sessions created."),
		StepsTotal: r.Counter("subdex_steps_total",
			"Exploration steps executed."),
		StepsDegraded: r.Counter("subdex_steps_degraded_total",
			"Exploration steps degraded to anytime results by a deadline."),
		StepLatency: r.Histogram("subdex_step_duration_seconds",
			"End-to-end duration of one exploration step (generation + recommendations).", nil),
		GenLatency: r.Histogram("subdex_generation_duration_seconds",
			"Duration of rating-map generation within a step.", nil),
		RecLatency: r.Histogram("subdex_recommendation_duration_seconds",
			"Duration of recommendation scoring within a step.", nil),
		RecCandidates: r.Counter("subdex_recommendation_candidates_total",
			"Candidate operations evaluated by the Recommendation Builder."),
		Engine: engine.NewMetrics(r),
	}
}

// Nil-safe recording helpers.

func (in *Instruments) sessionStarted() {
	if in == nil {
		return
	}
	in.SessionsStarted.Inc()
}

func (in *Instruments) stepDone(total, gen, rec time.Duration, recCandidates int, degraded bool) {
	if in == nil {
		return
	}
	in.StepsTotal.Inc()
	if degraded {
		in.StepsDegraded.Inc()
	}
	in.StepLatency.ObserveDuration(total)
	in.GenLatency.ObserveDuration(gen)
	if rec > 0 {
		in.RecLatency.ObserveDuration(rec)
	}
	in.RecCandidates.Add(int64(recCandidates))
}

// Instrument attaches a metrics registry to the explorer: core-level
// counters/histograms plus the RM-Generator's hot-path metrics. Pass nil
// to detach. Call it once at startup, before serving sessions.
func (ex *Explorer) Instrument(r *obs.Registry) {
	ex.Ins = NewInstruments(r)
	if ex.Ins != nil {
		ex.Gen.Metrics = ex.Ins.Engine
	} else {
		ex.Gen.Metrics = nil
	}
}
