// StepProfile is the per-step EXPLAIN record: the step-level costs and
// outcomes wrapped around the engine's execution profile. It is populated
// on every StepResult, serialized under the server's ?explain=1 flag, and
// pretty-printed by the subdex CLI's "explain" command.

package core

import "subdex/internal/engine"

// StepProfile explains one exploration step.
type StepProfile struct {
	// TraceID is the step's correlation ID (empty when the context carried
	// none and no sink minted one).
	TraceID string `json:"trace_id,omitempty"`
	// Selection is the selection the step displayed.
	Selection string `json:"selection"`
	// Mode is the exploration mode the step ran under.
	Mode string `json:"mode"`
	// GenMS is the rating-map generation wall time (materialize + engine +
	// diversity selection); RecMS the recommendation pass.
	GenMS float64 `json:"gen_ms"`
	RecMS float64 `json:"rec_ms"`
	// RecCandidates counts candidate operations the recommendation pass
	// evaluated.
	RecCandidates int `json:"rec_candidates"`
	// RecommendationsSkipped reports a step whose deadline was spent before
	// the recommendation pass, which therefore never ran.
	RecommendationsSkipped bool `json:"recommendations_skipped,omitempty"`
	// Degraded and DegradedReason mirror the step's anytime outcome; the
	// reason is the engine's (or "recommendations_skipped" when only the
	// recommendation pass was cut).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// GroupSize and RecordsProcessed mirror the StepResult counters.
	GroupSize        int `json:"group_size"`
	RecordsProcessed int `json:"records_processed"`
	// Engine is the generator's per-call profile for the displayed group
	// (recommendation-evaluation engine calls are not included).
	Engine *engine.Profile `json:"engine,omitempty"`
}
