package core

import (
	"testing"

	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

func TestEquationTwoScorerMatchesOperationUtility(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	op := query.Operation{Target: query.MustDescription(
		query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"})}
	a, err := EquationTwoScorer{}.ScoreOperation(ex, op, seen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.OperationUtility(op, seen)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("scorer %v vs direct %v", a, b)
	}
}

func TestLogAffinityScorerBoosts(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	sel := query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"}
	op := query.Operation{Target: query.MustDescription(sel), Added: &sel}

	plain := &LogAffinityScorer{Alpha: 0.5}
	before, err := plain.ScoreOperation(ex, op, seen)
	if err != nil {
		t.Fatal(err)
	}
	// Record interest in the gender attribute, then rescore.
	plain.Observe(op)
	after, err := plain.ScoreOperation(ex, op, seen)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("affinity boost missing: %v vs %v", after, before)
	}
	// An operation on an unrelated attribute gets no boost.
	other := query.Selector{Side: query.ItemSide, Attr: "parking", Value: "yes"}
	opOther := query.Operation{Target: query.MustDescription(other), Added: &other}
	base, err := EquationTwoScorer{}.ScoreOperation(ex, opOther, seen)
	if err != nil {
		t.Fatal(err)
	}
	scored, err := plain.ScoreOperation(ex, opOther, seen)
	if err != nil {
		t.Fatal(err)
	}
	if scored != base {
		t.Fatalf("unrelated op must not be boosted: %v vs %v", scored, base)
	}
}

func TestLogAffinityScorerZeroAlpha(t *testing.T) {
	ex := coreExplorer(t)
	seen := ratingmap.NewSeenSet()
	sel := query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"}
	op := query.Operation{Target: query.MustDescription(sel), Added: &sel}
	l := &LogAffinityScorer{Alpha: 0}
	l.Observe(op)
	a, _ := l.ScoreOperation(ex, op, seen)
	b, _ := EquationTwoScorer{}.ScoreOperation(ex, op, seen)
	if a != b {
		t.Fatal("alpha 0 must degrade to Equation 2")
	}
}

func TestCustomScorerWiredThroughRecommend(t *testing.T) {
	db := coreDB(t)
	cfg := DefaultConfig()
	cfg.Limits.MaxCandidates = 10
	cfg.Scorer = constantScorer{}
	ex, err := NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb := RecommendationBuilder{Ex: ex}
	recs, _, err := rb.Recommend(query.Description{}, nil, ratingmap.NewSeenSet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Utility != 42 {
			t.Fatalf("custom scorer ignored: %v", r.Utility)
		}
	}
}

type constantScorer struct{}

func (constantScorer) ScoreOperation(*Explorer, query.Operation, *ratingmap.SeenSet) (float64, error) {
	return 42, nil
}

func TestSessionBack(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, UserDriven, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Back() {
		t.Fatal("Back on fresh session must report false")
	}
	d1 := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"})
	d2 := query.MustDescription(query.Selector{Side: query.ItemSide, Attr: "parking", Value: "yes"})
	if err := sess.ApplyDescription(d1); err != nil {
		t.Fatal(err)
	}
	if err := sess.ApplyDescription(d2); err != nil {
		t.Fatal(err)
	}
	if !sess.Back() || !sess.Current().Equal(d1) {
		t.Fatalf("Back landed on %s, want %s", sess.Current(), d1)
	}
	if !sess.Back() || !sess.Current().IsEmpty() {
		t.Fatalf("second Back landed on %s, want TRUE", sess.Current())
	}
	if sess.Back() {
		t.Fatal("history exhausted; Back must report false")
	}
	// Re-applying the current description must not pollute the history.
	if err := sess.ApplyDescription(query.Description{}); err != nil {
		t.Fatal(err)
	}
	if sess.Back() {
		t.Fatal("no-op apply must not create history")
	}
}

func TestSessionFeedsLogAffinityScorer(t *testing.T) {
	db := coreDB(t)
	cfg := DefaultConfig()
	scorer := &LogAffinityScorer{Alpha: 1}
	cfg.Scorer = scorer
	ex, err := NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ex, UserDriven, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	d := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"})
	if err := sess.ApplyDescription(d); err != nil {
		t.Fatal(err)
	}
	if scorer.total == 0 {
		t.Fatal("session did not feed the log scorer")
	}
}
