package core

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"subdex/internal/query"
)

// walk drives a small mixed-op session: steps, a recommendation, an
// explicit predicate move, and a Back — one of every loggable op kind.
func walk(t *testing.T, sess *Session) {
	t.Helper()
	res, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("walk needs a recommendation to follow")
	}
	if err := sess.ApplyRecommendation(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	d, err := sess.Ex.ParseDescription("reviewers.gender = 'female'")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ApplyDescription(d); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	if !sess.Back() {
		t.Fatal("back must move")
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
}

// assertSameSession compares the restored session's observable state to
// the original's, field by field.
func assertSameSession(t *testing.T, want, got *Session) {
	t.Helper()
	if w, g := want.Current().String(), got.Current().String(); w != g {
		t.Errorf("current selection: want %q, got %q", w, g)
	}
	if w, g := want.NumSteps(), got.NumSteps(); w != g {
		t.Fatalf("steps: want %d, got %d", w, g)
	}
	ws, gs := want.Steps(), got.Steps()
	for i := range ws {
		if len(ws[i].Maps) != len(gs[i].Maps) {
			t.Fatalf("step %d: want %d maps, got %d", i, len(ws[i].Maps), len(gs[i].Maps))
		}
		for j := range ws[i].Maps {
			if w, g := ws[i].Maps[j].Digest(), gs[i].Maps[j].Digest(); w != g {
				t.Errorf("step %d map %d digest: want %s, got %s", i, j, w, g)
			}
		}
	}
	if !got.Seen().EqualState(want.Seen().State()) {
		t.Error("restored seen-set diverges from original")
	}
	wOps, gOps := want.Oplog(), got.Oplog()
	if len(wOps) != len(gOps) {
		t.Fatalf("oplog: want %d ops, got %d", len(wOps), len(gOps))
	}
	for i := range wOps {
		if wOps[i].OpID != gOps[i].OpID {
			t.Errorf("op %d id: want %q, got %q", i, wOps[i].OpID, gOps[i].OpID)
		}
	}
}

// TestSnapshotRestoreRoundTrip is the core durability contract: a
// snapshot replayed through a fresh engine over the same dataset rebuilds
// the session exactly — selection, step count, every displayed map's
// digest, the seen set, and the idempotency tags.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	walk(t, sess)
	sess.TagLastOp("42-7")
	snap := sess.Snapshot()

	// A fresh explorer over the same dataset and config: the restore
	// replays with cold caches and must still match bit for bit.
	fresh, err := NewExplorer(coreDB(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreSession(context.Background(), fresh, snap)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSession(t, sess, got)
	if last, ok := got.LastOp(); !ok || last.OpID != "42-7" {
		t.Errorf("idempotency tag lost across restore: %+v ok=%t", last, ok)
	}

	// The rebuilt sessions must also agree on where the walk goes next.
	wres, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	gres, err := got.Step()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wres.Maps {
		if w, g := wres.Maps[i].Digest(), gres.Maps[i].Digest(); w != g {
			t.Errorf("post-restore step map %d: want %s, got %s", i, w, g)
		}
	}
}

// TestSnapshotJSONRoundTrip pins that the snapshot survives its wire
// format: marshal, unmarshal, restore.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, UserDriven, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(sess.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap SessionSnapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreSession(context.Background(), ex, &snap)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSession(t, sess, got)
}

// TestRestoreRejections covers the refuse-to-guess paths: wrong version,
// wrong engine fingerprint, and a digest the replay cannot reproduce.
func TestRestoreRejections(t *testing.T) {
	ex := coreExplorer(t)
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}

	bad := sess.Snapshot()
	bad.Version = SnapshotVersion + 1
	if _, err := RestoreSession(context.Background(), ex, bad); err == nil {
		t.Error("version mismatch must be rejected")
	}

	bad = sess.Snapshot()
	bad.Fingerprint = "0000000000000000"
	if _, err := RestoreSession(context.Background(), ex, bad); err == nil {
		t.Error("fingerprint mismatch must be rejected")
	}

	bad = sess.Snapshot()
	bad.Ops[0].Digests[0] = "tampered"
	if _, err := RestoreSession(context.Background(), ex, bad); err == nil {
		t.Error("digest mismatch must be rejected")
	}

	if _, err := RestoreSession(context.Background(), ex, nil); err == nil {
		t.Error("nil snapshot must be rejected")
	}

	// A different engine configuration changes the fingerprint itself.
	cfg := DefaultConfig()
	cfg.K = 5
	other, err := NewExplorer(coreDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSession(context.Background(), other, sess.Snapshot()); err == nil {
		t.Error("snapshot must not restore against a differently-configured engine")
	}
}

// TestDegradedStepSnapshotRestore covers the anytime-step exception: a
// degraded step's partial scan depends on wall-clock phase boundaries, so
// its op replays from the recorded seen-set delta instead of recomputing
// — and the session's continuation after restore still matches the
// original's exactly.
func TestDegradedStepSnapshotRestore(t *testing.T) {
	var stall atomic.Bool
	stall.Store(true)
	cfg := DefaultConfig()
	cfg.StepTimeout = 50 * time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 && stall.Load() {
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Second):
			}
		}
	}
	ex, err := NewExplorer(coreDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ex, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("setup failed: first step must degrade")
	}
	stall.Store(false) // subsequent steps run to completion
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if !snap.Ops[0].Degraded || len(snap.Ops[0].Seen) == 0 {
		t.Fatalf("degraded step must log its seen delta: %+v", snap.Ops[0])
	}

	// Restore against an engine with neither the stalling hook nor the
	// deadline: replay must not attempt to recompute the anytime prefix.
	freshCfg := DefaultConfig()
	freshCfg.Engine.MinPhaseRecords = 1
	fresh, err := NewExplorer(coreDB(t), freshCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreSession(context.Background(), fresh, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSteps() != sess.NumSteps() {
		t.Fatalf("steps: want %d, got %d", sess.NumSteps(), got.NumSteps())
	}
	if !got.Steps()[0].Degraded {
		t.Error("restored step 0 must stay marked degraded")
	}
	if !got.Seen().EqualState(sess.Seen().State()) {
		t.Error("restored seen-set diverges from original")
	}
	wres, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	gres, err := got.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Maps) != len(gres.Maps) {
		t.Fatalf("continuation maps: want %d, got %d", len(wres.Maps), len(gres.Maps))
	}
	for i := range wres.Maps {
		if w, g := wres.Maps[i].Digest(), gres.Maps[i].Digest(); w != g {
			t.Errorf("continuation map %d: want %s, got %s", i, w, g)
		}
	}
}

// TestFingerprintSensitivity pins what the fingerprint must and must not
// react to: result-affecting parameters change it, scheduling knobs do
// not (a snapshot taken under one worker count or step deadline must
// restore under another).
func TestFingerprintSensitivity(t *testing.T) {
	db := coreDB(t)
	base, err := NewExplorer(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StepTimeout = time.Hour
	cfg.Engine.Workers = 1
	sched, err := NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != sched.Fingerprint() {
		t.Error("scheduling knobs must not change the fingerprint")
	}
	cfg = DefaultConfig()
	cfg.O = 7
	diff, err := NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == diff.Fingerprint() {
		t.Error("result-affecting parameters must change the fingerprint")
	}
}
