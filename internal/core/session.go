package core

import (
	"context"
	"fmt"
	"time"

	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Session is one exploration: a current description, the history of seen
// rating maps (driving global peculiarity and dimension weights), and the
// step log. Sessions are mode-agnostic; the mode decides who supplies each
// operation.
//
// Steps are threaded through the explorer's cross-step accumulator cache
// (Config.EngineCacheRecords): when an exploration walk revisits a
// selection — filter → generalize → filter, the Back button, or a
// recommendation target evaluated on an earlier step — the engine skips
// the aggregation scan and re-finalizes the cached histograms against the
// session's *current* seen set, so cached steps are indistinguishable
// from recomputed ones.
type Session struct {
	Ex   *Explorer
	Mode Mode

	cur     query.Description
	seen    *ratingmap.SeenSet
	steps   []*StepResult
	rb      RecommendationBuilder
	history []query.Description // selections visited, for Back

	start query.Description // the selection the session began at
	oplog []SessionOp       // every committed operation, for snapshot/replay
}

// NewSession starts a session at the given description (use the zero
// Description to start from the whole database).
func NewSession(ex *Explorer, mode Mode, start query.Description) (*Session, error) {
	if err := ex.Query.Validate(start); err != nil {
		return nil, err
	}
	ex.Ins.sessionStarted()
	return &Session{Ex: ex, Mode: mode, cur: start, start: start,
		seen: ratingmap.NewSeenSet(), rb: RecommendationBuilder{Ex: ex}}, nil
}

// Current returns the session's current description.
func (s *Session) Current() query.Description { return s.cur }

// Seen returns the history of displayed rating maps.
func (s *Session) Seen() *ratingmap.SeenSet { return s.seen }

// Steps returns the executed step results, oldest first.
func (s *Session) Steps() []*StepResult { return s.steps }

// NumSteps returns how many steps have been displayed.
func (s *Session) NumSteps() int { return len(s.steps) }

// Step runs one exploration step at the current description: it selects and
// commits the k diverse high-utility rating maps, and — in guided modes —
// attaches the top-o next-step recommendations. The displayed maps are
// added to the seen set *before* recommendations are evaluated, matching
// the paper's ordering (an operation's utility depends on the maps "seen by
// the user up to this step").
//
// Step is an XCtx compatibility shim: a context-free wrapper F that
// delegates to FCtx with context.Background(), keeping the pre-context
// API alive. Shims like this (Step, engine.Generator.TopMaps,
// Explorer.RMSet) are the only non-main, non-test call sites where the
// ctxflow analyzer permits minting a root context.
func (s *Session) Step() (*StepResult, error) {
	return s.StepCtx(context.Background())
}

// StepCtx is Step with span propagation and a compute deadline: under a
// context carrying an obs sink (see obs.WithSink) the whole step is
// recorded as one "core.step" span tree — rating-map generation, engine
// phases, and recommendation scoring as children — and, when the explorer
// is instrumented, the step/recommendation latency histograms and
// counters are updated.
//
// When Config.StepTimeout is set (> 0), the context is additionally
// bounded by it. A deadline hitting after the engine's first phase
// boundary degrades the step to an anytime result (StepResult.Degraded,
// with RecordsProcessed reporting the scanned prefix) and skips the
// recommendation pass; a deadline hitting before any phase completes
// returns the context's error.
func (s *Session) StepCtx(ctx context.Context) (*StepResult, error) {
	start := time.Now()
	if t := s.Ex.Cfg.StepTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	ctx, span := obs.StartSpan(ctx, "core.step")
	span.SetAttr("selection", s.cur.String())
	span.SetAttr("mode", s.Mode.String())
	defer span.End()
	res, err := s.Ex.RMSetCtx(ctx, s.cur, s.seen)
	if err != nil {
		return nil, err
	}
	for _, rm := range res.Maps {
		s.seen.Add(rm)
	}
	switch {
	case s.Mode == UserDriven:
		// No recommendations in user-driven mode.
	case ctx.Err() != nil:
		// The step budget is spent: recommendation building would start a
		// fresh full-cost computation. Skip it and report degradation.
		res.Degraded = true
		span.SetAttr("recommendations_skipped", true)
	default:
		recStart := time.Now()
		_, rspan := obs.StartSpan(ctx, "core.recommend")
		recs, durs, err := s.rb.Recommend(s.cur, res.Maps, s.seen, s.Ex.Cfg.O)
		if err != nil {
			rspan.End()
			return nil, err
		}
		res.Recommendations = recs
		res.RecOpDurations = durs
		res.RecDuration = time.Since(recStart)
		rspan.SetAttr("evaluated", len(durs))
		rspan.SetAttr("recommended", len(recs))
		rspan.End()
	}
	if res.Degraded {
		span.SetAttr("degraded", true)
	}
	s.finishProfile(ctx, res)
	s.steps = append(s.steps, res)
	s.oplog = append(s.oplog, stepOp(res))
	s.Ex.Ins.stepDone(time.Since(start), res.GenDuration, res.RecDuration, len(res.RecOpDurations), res.Degraded)
	return res, nil
}

// finishProfile completes the step's EXPLAIN record with the step-level
// fields rmSetForGroup cannot know: the trace ID, mode, timings, and the
// recommendation-pass outcome.
func (s *Session) finishProfile(ctx context.Context, res *StepResult) {
	res.TraceID = string(obs.TraceIDFrom(ctx))
	p := res.Profile
	if p == nil {
		p = &StepProfile{GroupSize: res.GroupSize, RecordsProcessed: res.RecordsProcessed}
		res.Profile = p
	}
	p.TraceID = res.TraceID
	p.Selection = res.Desc.String()
	p.Mode = s.Mode.String()
	p.GenMS = float64(res.GenDuration.Microseconds()) / 1000
	p.RecMS = float64(res.RecDuration.Microseconds()) / 1000
	p.RecCandidates = len(res.RecOpDurations)
	p.Degraded = res.Degraded
	if p.Engine != nil {
		p.DegradedReason = p.Engine.DegradedReason
	}
	// A step can degrade without the engine degrading: the deadline landed
	// between generation and the recommendation pass.
	if res.Degraded && s.Mode != UserDriven && res.Recommendations == nil && res.RecDuration == 0 {
		p.RecommendationsSkipped = true
		if p.DegradedReason == "" {
			p.DegradedReason = "recommendations_skipped"
		}
	}
}

// Apply moves the session to the operation's target description. Any
// operation is accepted in UserDriven and RecommendationPowered modes;
// FullyAutomated sessions advance only via Auto.
func (s *Session) Apply(op query.Operation) error {
	return s.ApplyDescription(op.Target)
}

// ApplyDescription moves the session to an explicit description (the
// user-provided operation path, including the advanced SQL screen). The
// previous selection is pushed onto the Back history.
func (s *Session) ApplyDescription(d query.Description) error {
	if err := s.applyDescription(d); err != nil {
		return err
	}
	s.oplog = append(s.oplog, SessionOp{Kind: OpApply, Predicate: d.String()})
	return nil
}

// applyDescription is ApplyDescription without the op-log record; the
// recommendation path logs an index-based op instead.
func (s *Session) applyDescription(d query.Description) error {
	if err := s.Ex.Query.Validate(d); err != nil {
		return err
	}
	if !s.cur.Equal(d) {
		s.history = append(s.history, s.cur)
	}
	s.cur = d
	// Feed the session's own log-affinity scorer, if one is configured, so
	// personalization reflects the user's actual trajectory.
	if l, ok := s.Ex.Cfg.Scorer.(*LogAffinityScorer); ok {
		l.Observe(query.Operation{Target: d})
	}
	return nil
}

// Back returns the session to the previously visited selection, like the
// browser-style back button of the demo UI. It reports false when the
// history is empty.
func (s *Session) Back() bool {
	if len(s.history) == 0 {
		return false
	}
	s.cur = s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.oplog = append(s.oplog, SessionOp{Kind: OpBack})
	return true
}

// ApplyRecommendation applies the i-th recommendation of the latest step.
func (s *Session) ApplyRecommendation(i int) error {
	if len(s.steps) == 0 {
		return fmt.Errorf("core: no step executed yet")
	}
	last := s.steps[len(s.steps)-1]
	if i < 0 || i >= len(last.Recommendations) {
		return fmt.Errorf("core: recommendation index %d out of range (have %d)", i, len(last.Recommendations))
	}
	if err := s.applyDescription(last.Recommendations[i].Op.Target); err != nil {
		return err
	}
	s.oplog = append(s.oplog, SessionOp{Kind: OpRecommend, Index: i})
	return nil
}

// Auto runs a Fully-Automated exploration of m steps from the current
// description, applying the top-1 recommendation after each step. It stops
// early if no recommendation is available. It returns the executed steps.
//
// Auto is an XCtx compatibility shim: a context-free wrapper F that
// delegates to FCtx with context.Background(), keeping the pre-context
// API alive. Shims like this (Auto, Step, engine.Generator.TopMaps,
// Explorer.RMSet) are the only non-main, non-test call sites where the
// ctxflow analyzer permits minting a root context.
func (s *Session) Auto(m int) ([]*StepResult, error) {
	return s.AutoCtx(context.Background(), m)
}

// AutoCtx is Auto under a caller-supplied context: every step runs through
// StepCtx, so the auto-pilot honors the caller's deadline and cancellation
// (plus Config.StepTimeout per step) and emits the full span tree. On a
// mid-walk cancellation it returns the steps completed so far together
// with the step's error — an auto-pilot is a sequence of anytime steps,
// so a prefix of the walk is always a valid partial result.
func (s *Session) AutoCtx(ctx context.Context, m int) ([]*StepResult, error) {
	if s.Mode == UserDriven {
		return nil, fmt.Errorf("core: Auto requires a guided mode, session is %s", s.Mode)
	}
	var out []*StepResult
	for i := 0; i < m; i++ {
		res, err := s.StepCtx(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if i == m-1 {
			break
		}
		if len(res.Recommendations) == 0 {
			break
		}
		// Committed as an index op (not the target predicate), so the
		// session log replays the auto-pilot's choice structurally.
		if err := s.ApplyRecommendation(0); err != nil {
			return out, err
		}
	}
	return out, nil
}

// PathSummary aggregates a finished session for the Table 5 metrics: total
// utility, number of distinct grouping attributes shown, and mean per-step
// average pairwise diversity.
type PathSummary struct {
	Steps              int
	TotalUtility       float64
	DistinctAttributes int
	AvgDiversity       float64
	MapsPerDimension   map[int]int
}

// Summarize computes the PathSummary of the session so far.
func (s *Session) Summarize() PathSummary {
	sum := PathSummary{Steps: len(s.steps), MapsPerDimension: make(map[int]int)}
	attrs := make(map[string]bool)
	div := 0.0
	for _, st := range s.steps {
		sum.TotalUtility += st.TotalUtility()
		div += st.AvgDiversity
		for _, rm := range st.Maps {
			attrs[fmt.Sprintf("%d.%s", rm.Side, rm.Attr)] = true
			sum.MapsPerDimension[rm.Dim]++
		}
	}
	sum.DistinctAttributes = len(attrs)
	if len(s.steps) > 0 {
		sum.AvgDiversity = div / float64(len(s.steps))
	}
	return sum
}
