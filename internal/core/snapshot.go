package core

import (
	"context"
	"fmt"
	"hash/fnv"

	"subdex/internal/ratingmap"
)

// This file is the canonical serialization of a Session and its inverse.
// A session is fully determined by where it started and the operations
// committed since (the engine is bit-deterministic), so the snapshot is a
// command log: RestoreSession replays the ops through the real engine —
// rewarming the shared caches on the way — and verifies the rebuilt state
// against recorded digests. The one exception is anytime (degraded)
// steps, whose partial scans depend on wall-clock phase boundaries; their
// ops carry the recorded seen-set delta and are re-applied from the
// record instead of recomputed (see SessionOp.Seen).

// SnapshotVersion is the current serialization version. RestoreSession
// rejects snapshots written by a different version.
const SnapshotVersion = 1

// OpKind enumerates the committed session operations.
type OpKind string

// The four operations a session commits: a step display, an explicit
// description move, a recommendation application, and a Back.
const (
	OpStep      OpKind = "step"
	OpApply     OpKind = "apply"
	OpRecommend OpKind = "recommend"
	OpBack      OpKind = "back"
)

// SessionOp is one committed operation in a session's log. Ops are
// recorded only after they succeed, so a log replays without errors
// against the same engine.
type SessionOp struct {
	Kind OpKind `json:"kind"`
	// Predicate is the target description for OpApply (its canonical
	// String rendering, re-parsed on replay).
	Predicate string `json:"predicate,omitempty"`
	// Index is the 0-based recommendation index for OpRecommend.
	Index int `json:"index,omitempty"`
	// Digests fingerprints the displayed maps of an OpStep; replay must
	// reproduce them exactly.
	Digests []string `json:"digests,omitempty"`
	// Degraded marks an OpStep whose result was an anytime prefix. Such
	// steps are restored from Seen rather than recomputed.
	Degraded bool `json:"degraded,omitempty"`
	// Seen is the seen-set delta of a degraded OpStep: the pooled
	// distribution and dimension of each displayed map, in order.
	Seen []SeenDelta `json:"seen,omitempty"`
	// OpID is the client-supplied idempotency tag of the request that
	// committed this op (empty when the client sent none). It survives
	// recovery so duplicate-request detection works across restarts.
	OpID string `json:"op_id,omitempty"`
}

// SeenDelta records one displayed map's contribution to the seen set.
type SeenDelta struct {
	Dim  int       `json:"dim"`
	Dist []float64 `json:"dist"`
}

// SessionSnapshot is the canonical, versioned serialization of a Session.
// Start + Ops reconstruct the session; Final, when present, records the
// resulting state so the reconstruction can be verified, not trusted.
type SessionSnapshot struct {
	Version int `json:"version"`
	// Fingerprint binds the snapshot to the dataset and engine
	// configuration it was taken under (see Explorer.Fingerprint);
	// replaying against a different engine would silently diverge.
	Fingerprint string `json:"fingerprint"`
	// Mode is the exploration mode's wire token (ud | rp | fa).
	Mode string `json:"mode"`
	// Start is the canonical rendering of the session's first selection.
	Start string `json:"start"`
	// Ops is the committed operation log, oldest first.
	Ops []SessionOp `json:"ops,omitempty"`
	// Final records the state after all ops. Snapshots taken from a live
	// session carry it; snapshots reconstructed from a write-ahead log
	// leave it nil (the per-step digests in Ops are the authority there).
	Final *FinalState `json:"final,omitempty"`
}

// FinalState is the verifiable end state of a snapshot's op log.
type FinalState struct {
	// Current is the canonical rendering of the selection after all ops.
	Current string `json:"current"`
	// Steps is the number of step displays after all ops.
	Steps int `json:"steps"`
	// Seen is the full seen-set state after all ops.
	Seen ratingmap.SeenState `json:"seen"`
}

// Snapshot exports the session's durable state.
func (s *Session) Snapshot() *SessionSnapshot {
	return &SessionSnapshot{
		Version:     SnapshotVersion,
		Fingerprint: s.Ex.Fingerprint(),
		Mode:        s.Mode.Token(),
		Start:       s.start.String(),
		Ops:         append([]SessionOp(nil), s.oplog...),
		Final: &FinalState{
			Current: s.cur.String(),
			Steps:   len(s.steps),
			Seen:    s.seen.State(),
		},
	}
}

// BaseSnapshot exports the session's creation-time state alone: the
// snapshot a durable store records when the session is created, before
// any op is appended to it.
func (s *Session) BaseSnapshot() *SessionSnapshot {
	return &SessionSnapshot{
		Version:     SnapshotVersion,
		Fingerprint: s.Ex.Fingerprint(),
		Mode:        s.Mode.Token(),
		Start:       s.start.String(),
	}
}

// Oplog returns a copy of the committed operation log.
func (s *Session) Oplog() []SessionOp { return append([]SessionOp(nil), s.oplog...) }

// NumOps returns the length of the committed operation log.
func (s *Session) NumOps() int { return len(s.oplog) }

// TagLastOp attaches a client idempotency tag to the most recently
// committed op. It is a no-op on an empty log or an empty id.
func (s *Session) TagLastOp(id string) {
	if id == "" || len(s.oplog) == 0 {
		return
	}
	s.oplog[len(s.oplog)-1].OpID = id
}

// LastOp returns the most recently committed op and true, or false on an
// empty log.
func (s *Session) LastOp() (SessionOp, bool) {
	if len(s.oplog) == 0 {
		return SessionOp{}, false
	}
	return s.oplog[len(s.oplog)-1], true
}

// Fingerprint renders a stable identity for the explorer's dataset and
// result-affecting configuration: the Table 2 dataset statistics plus the
// dimension schema, and the Table 3 / engine parameters that change what
// a step computes. Scheduling knobs (worker counts, cache budgets, step
// timeouts) are excluded on purpose — the engine is proven to return
// bit-identical results across them.
func (ex *Explorer) Fingerprint() string {
	h := fnv.New64a()
	st := ex.DB.Stats()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%d", st.Name, st.NumAttributes,
		st.MaxNumValues, st.NumDimensions, st.NumRatings, st.NumReviewers, st.NumItems)
	for _, d := range ex.DB.Ratings.Dimensions {
		fmt.Fprintf(h, "|dim=%s/%d", d.Name, d.Scale)
	}
	c := ex.Cfg
	fmt.Fprintf(h, "|k=%d|o=%d|l=%d|div=%t|rss=%d", c.K, c.O, c.L, c.DiversityOnly, c.RecSampleSize)
	e := c.Engine
	fmt.Fprintf(h, "|ph=%d|delta=%g|prune=%d|minph=%d|exact=%t|util=%+v",
		e.Phases, e.Delta, int(e.Pruning), e.MinPhaseRecords, e.ExactOnCacheMiss, e.Utility)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RestoreSession rebuilds a session from its snapshot by replaying the
// operation log through the real engine. Every non-degraded step is
// recomputed and verified against its recorded digests; degraded steps
// are re-applied from their recorded seen-set delta. The final state is
// additionally checked against the snapshot's Current/Steps/Seen record.
// Replay therefore both proves exactness and rewarms the engine's
// cross-step cache for the session's path.
func RestoreSession(ctx context.Context, ex *Explorer, snap *SessionSnapshot) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if fp := ex.Fingerprint(); snap.Fingerprint != fp {
		return nil, fmt.Errorf("core: snapshot fingerprint %s does not match engine %s", snap.Fingerprint, fp)
	}
	mode, err := ParseModeToken(snap.Mode)
	if err != nil {
		return nil, err
	}
	start, err := ex.ParseDescription(snap.Start)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot start: %w", err)
	}
	sess, err := NewSession(ex, mode, start)
	if err != nil {
		return nil, err
	}
	for i, op := range snap.Ops {
		if err := sess.replayOp(ctx, op); err != nil {
			return nil, fmt.Errorf("core: replay op %d (%s): %w", i, op.Kind, err)
		}
		sess.TagLastOp(op.OpID)
	}
	if f := snap.Final; f != nil {
		if got := sess.cur.String(); got != f.Current {
			return nil, fmt.Errorf("core: replay ended at %q, snapshot recorded %q", got, f.Current)
		}
		if len(sess.steps) != f.Steps {
			return nil, fmt.Errorf("core: replay produced %d steps, snapshot recorded %d", len(sess.steps), f.Steps)
		}
		if !sess.seen.EqualState(f.Seen) {
			return nil, fmt.Errorf("core: replayed seen-set diverges from snapshot")
		}
	}
	return sess, nil
}

// replayOp re-executes one logged operation, verifying step digests.
func (s *Session) replayOp(ctx context.Context, op SessionOp) error {
	switch op.Kind {
	case OpStep:
		if op.Degraded {
			return s.replayDegradedStep(op)
		}
		res, err := s.StepCtx(ctx)
		if err != nil {
			return err
		}
		if res.Degraded {
			return fmt.Errorf("replayed step degraded, original did not")
		}
		if len(res.Maps) != len(op.Digests) {
			return fmt.Errorf("replayed step shows %d maps, log recorded %d", len(res.Maps), len(op.Digests))
		}
		for i, rm := range res.Maps {
			if got := rm.Digest(); got != op.Digests[i] {
				return fmt.Errorf("map %d digest mismatch: replay %s, log %s", i, got, op.Digests[i])
			}
		}
		return nil
	case OpApply:
		d, err := s.Ex.ParseDescription(op.Predicate)
		if err != nil {
			return err
		}
		return s.ApplyDescription(d)
	case OpRecommend:
		return s.ApplyRecommendation(op.Index)
	case OpBack:
		if !s.Back() {
			return fmt.Errorf("back on empty history")
		}
		return nil
	default:
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
}

// replayDegradedStep re-applies a degraded step's recorded effect: its
// seen-set delta and a placeholder step entry. The anytime computation
// itself is not re-run — its scanned prefix depended on wall-clock phase
// boundaries, which no replay can reproduce.
func (s *Session) replayDegradedStep(op SessionOp) error {
	if len(op.Seen) != len(op.Digests) {
		return fmt.Errorf("degraded step records %d deltas for %d maps", len(op.Seen), len(op.Digests))
	}
	for _, d := range op.Seen {
		s.seen.AddDist(d.Dim, d.Dist)
	}
	res := &StepResult{Desc: s.cur, Degraded: true}
	res.Profile = &StepProfile{Selection: s.cur.String(), Mode: s.Mode.String(),
		Degraded: true, DegradedReason: "restored_from_log"}
	s.steps = append(s.steps, res)
	s.oplog = append(s.oplog, op)
	return nil
}

// stepOp builds the log record of a just-executed step.
func stepOp(res *StepResult) SessionOp {
	op := SessionOp{Kind: OpStep, Degraded: res.Degraded}
	op.Digests = make([]string, len(res.Maps))
	for i, rm := range res.Maps {
		op.Digests[i] = rm.Digest()
	}
	if res.Degraded {
		op.Seen = make([]SeenDelta, len(res.Maps))
		for i, rm := range res.Maps {
			op.Seen[i] = SeenDelta{Dim: rm.Dim, Dist: rm.Distribution()}
		}
	}
	return op
}

// Token renders the mode as its compact wire token, shared by the HTTP
// API and session snapshots.
func (m Mode) Token() string {
	switch m {
	case UserDriven:
		return "ud"
	case FullyAutomated:
		return "fa"
	default:
		return "rp"
	}
}

// ParseModeToken parses a wire token back into a Mode.
func ParseModeToken(tok string) (Mode, error) {
	switch tok {
	case "ud":
		return UserDriven, nil
	case "rp", "":
		return RecommendationPowered, nil
	case "fa":
		return FullyAutomated, nil
	default:
		return 0, fmt.Errorf("core: unknown mode token %q", tok)
	}
}
