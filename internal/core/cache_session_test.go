package core

import (
	"math"
	"testing"

	"subdex/internal/engine"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// assertStepsEqual checks the fields a user can observe: the displayed
// maps (by full histogram digest), their utilities, the diversity
// numbers, and the recommendation list.
func assertStepsEqual(t *testing.T, idx int, a, b *StepResult) {
	t.Helper()
	if ratingmap.DigestMaps(a.Maps) != ratingmap.DigestMaps(b.Maps) {
		t.Fatalf("step %d: displayed maps differ", idx)
	}
	if len(a.Utilities) != len(b.Utilities) {
		t.Fatalf("step %d: utility count %d vs %d", idx, len(a.Utilities), len(b.Utilities))
	}
	for i := range a.Utilities {
		if math.Abs(a.Utilities[i]-b.Utilities[i]) > 1e-12 {
			t.Fatalf("step %d: utility[%d] %g vs %g", idx, i, a.Utilities[i], b.Utilities[i])
		}
	}
	if a.SetDiversity != b.SetDiversity || a.AvgDiversity != b.AvgDiversity {
		t.Fatalf("step %d: diversity (%g,%g) vs (%g,%g)", idx,
			a.SetDiversity, a.AvgDiversity, b.SetDiversity, b.AvgDiversity)
	}
	if a.GroupSize != b.GroupSize {
		t.Fatalf("step %d: group size %d vs %d", idx, a.GroupSize, b.GroupSize)
	}
	if len(a.Recommendations) != len(b.Recommendations) {
		t.Fatalf("step %d: rec count %d vs %d", idx, len(a.Recommendations), len(b.Recommendations))
	}
	for i := range a.Recommendations {
		ra, rb := a.Recommendations[i], b.Recommendations[i]
		if !ra.Op.Target.Equal(rb.Op.Target) {
			t.Fatalf("step %d: rec[%d] target %s vs %s", idx, i, ra.Op.Target, rb.Op.Target)
		}
		if math.Abs(ra.Utility-rb.Utility) > 1e-12 {
			t.Fatalf("step %d: rec[%d] utility %g vs %g", idx, i, ra.Utility, rb.Utility)
		}
	}
}

// TestSessionCachedMatchesUncached runs the same exploration walk —
// root, drill-down, Back to root (a revisit) — on two explorers that
// differ only in the engine cache, and demands indistinguishable
// StepResults. This is the harness clause "cached vs. uncached step
// sequences return identical Results": the cache stores accumulators,
// not finalized maps, so a hit re-finalizes against the session's
// current seen set and can never leak stale utilities.
func TestSessionCachedMatchesUncached(t *testing.T) {
	db := coreDB(t)

	cached := DefaultConfig()
	cached.Engine.Workers = 4
	uncached := cached
	uncached.EngineCacheRecords = -1 // disabled

	exC, err := NewExplorer(db, cached)
	if err != nil {
		t.Fatal(err)
	}
	exU, err := NewExplorer(db, uncached)
	if err != nil {
		t.Fatal(err)
	}
	if exU.Gen.Cache != nil {
		t.Fatal("negative EngineCacheRecords must disable the cache")
	}

	sC, err := NewSession(exC, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	sU, err := NewSession(exU, RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}

	step := func(idx int) *StepResult {
		t.Helper()
		rc, err := sC.Step()
		if err != nil {
			t.Fatal(err)
		}
		ru, err := sU.Step()
		if err != nil {
			t.Fatal(err)
		}
		assertStepsEqual(t, idx, rc, ru)
		return rc
	}

	first := step(0)
	if len(first.Recommendations) == 0 {
		t.Fatal("no recommendations at root")
	}
	// Drill into the top recommendation on both sessions.
	if err := sC.ApplyRecommendation(0); err != nil {
		t.Fatal(err)
	}
	if err := sU.Apply(first.Recommendations[0].Op); err != nil {
		t.Fatal(err)
	}
	step(1)
	// Back to the root: the cached session replays this selection (and
	// every re-evaluated candidate operation) from the accumulator cache,
	// but against a seen set two steps richer — results must still match
	// the uncached recomputation exactly.
	if !sC.Back() || !sU.Back() {
		t.Fatal("Back failed")
	}
	step(2)

	st := exC.EngineCacheStats()
	if st.Hits == 0 {
		t.Fatalf("revisit produced no cache hits: %+v", st)
	}
	if exU.EngineCacheStats() != (engine.CacheStats{}) {
		t.Fatalf("uncached explorer reported cache stats: %+v", exU.EngineCacheStats())
	}

	exC.InvalidateEngineCache()
	if st := exC.EngineCacheStats(); st.Entries != 0 || st.UsedRecords != 0 {
		t.Fatalf("post-invalidate stats %+v", st)
	}
}
