package dataset

import (
	"fmt"
	"math/rand"
)

// Subsetting transforms for the scalability study (Figure 10): sampling
// reviewers (database size), dropping attributes (number of GroupBys), and
// dropping attribute values (number of next-step operations). Each returns
// a new frozen database; the source is unmodified.

// SampleReviewers keeps a random fraction of reviewers and exactly their
// rating records, as in Figure 10(a).
func SampleReviewers(db *DB, fraction float64, seed int64) (*DB, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: fraction %v out of (0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	keep := make([]bool, db.Reviewers.Len())
	kept := 0
	for i := range keep {
		if rng.Float64() < fraction {
			keep[i] = true
			kept++
		}
	}
	if kept == 0 && db.Reviewers.Len() > 0 {
		keep[0] = true
	}

	newU, oldToNewU, err := copyEntities(db.Reviewers, keep)
	if err != nil {
		return nil, err
	}
	allItems := make([]bool, db.Items.Len())
	for i := range allItems {
		allItems[i] = true
	}
	newI, oldToNewI, err := copyEntities(db.Items, allItems)
	if err != nil {
		return nil, err
	}

	rt, err := NewRatingTable(db.Ratings.Dimensions...)
	if err != nil {
		return nil, err
	}
	scores := make([]Score, len(db.Ratings.Dimensions))
	for r := 0; r < db.Ratings.Len(); r++ {
		u := int(db.Ratings.Reviewer[r])
		if !keep[u] {
			continue
		}
		for d := range scores {
			scores[d] = db.Ratings.Scores[d][r]
		}
		if err := rt.Append(oldToNewU[u], oldToNewI[int(db.Ratings.Item[r])], scores); err != nil {
			return nil, err
		}
	}
	out := NewDB(db.Name+"-sampled", newU, newI, rt)
	if err := out.Freeze(); err != nil {
		return nil, err
	}
	return out, nil
}

// copyEntities clones the kept rows of a table.
func copyEntities(t *EntityTable, keep []bool) (*EntityTable, map[int]int, error) {
	nt := NewEntityTable(t.Name, t.Schema)
	oldToNew := make(map[int]int)
	for row := 0; row < t.Len(); row++ {
		if !keep[row] {
			continue
		}
		values := make(map[string]string)
		setValues := make(map[string][]string)
		for a := 0; a < t.Schema.Len(); a++ {
			attr := t.Schema.At(a)
			switch attr.Kind {
			case Atomic:
				if v := t.AtomicValue(a, row); v != MissingValue {
					values[attr.Name] = t.Dict(a).Value(v)
				}
			case MultiValued:
				for _, v := range t.MultiValues(a, row) {
					setValues[attr.Name] = append(setValues[attr.Name], t.Dict(a).Value(v))
				}
			}
		}
		nr, err := nt.AppendRow(t.Keys[row], values, setValues)
		if err != nil {
			return nil, nil, err
		}
		oldToNew[row] = nr
	}
	return nt, oldToNew, nil
}

// KeepAttributes retains a random subset of attributes across the two
// entity tables, totalling keepTotal, as in Figure 10(b). At least one
// attribute per table is always kept.
func KeepAttributes(db *DB, keepTotal int, seed int64) (*DB, error) {
	totalAttrs := db.Reviewers.Schema.Len() + db.Items.Schema.Len()
	if keepTotal < 2 {
		keepTotal = 2
	}
	if keepTotal > totalAttrs {
		keepTotal = totalAttrs
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(totalAttrs)
	keep := make([]bool, totalAttrs)
	// Force one attribute per table, then fill the rest randomly.
	keep[rng.Intn(db.Reviewers.Schema.Len())] = true
	keep[db.Reviewers.Schema.Len()+rng.Intn(db.Items.Schema.Len())] = true
	count := 2
	for _, i := range order {
		if count >= keepTotal {
			break
		}
		if !keep[i] {
			keep[i] = true
			count++
		}
	}

	newU, err := projectEntities(db.Reviewers, keep[:db.Reviewers.Schema.Len()])
	if err != nil {
		return nil, err
	}
	newI, err := projectEntities(db.Items, keep[db.Reviewers.Schema.Len():])
	if err != nil {
		return nil, err
	}
	return rebuildWithEntities(db, newU, newI, db.Name+"-attrs")
}

// projectEntities keeps only the flagged attributes of a table.
func projectEntities(t *EntityTable, keep []bool) (*EntityTable, error) {
	var attrs []Attribute
	for a := 0; a < t.Schema.Len(); a++ {
		if keep[a] {
			attrs = append(attrs, t.Schema.At(a))
		}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	nt := NewEntityTable(t.Name, schema)
	for row := 0; row < t.Len(); row++ {
		values := make(map[string]string)
		setValues := make(map[string][]string)
		for a := 0; a < t.Schema.Len(); a++ {
			if !keep[a] {
				continue
			}
			attr := t.Schema.At(a)
			switch attr.Kind {
			case Atomic:
				if v := t.AtomicValue(a, row); v != MissingValue {
					values[attr.Name] = t.Dict(a).Value(v)
				}
			case MultiValued:
				for _, v := range t.MultiValues(a, row) {
					setValues[attr.Name] = append(setValues[attr.Name], t.Dict(a).Value(v))
				}
			}
		}
		if _, err := nt.AppendRow(t.Keys[row], values, setValues); err != nil {
			return nil, err
		}
	}
	return nt, nil
}

// SampleAttributeValues keeps a random fraction of each attribute's value
// domain; entities holding a dropped value become missing on that
// attribute, as in Figure 10(c). At least one value per attribute survives.
func SampleAttributeValues(db *DB, fraction float64, seed int64) (*DB, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: fraction %v out of (0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	newU, err := sampleValues(db.Reviewers, fraction, rng)
	if err != nil {
		return nil, err
	}
	newI, err := sampleValues(db.Items, fraction, rng)
	if err != nil {
		return nil, err
	}
	return rebuildWithEntities(db, newU, newI, db.Name+"-vals")
}

func sampleValues(t *EntityTable, fraction float64, rng *rand.Rand) (*EntityTable, error) {
	// Decide kept values per attribute.
	keep := make([]map[string]bool, t.Schema.Len())
	for a := range keep {
		values := t.Dict(a).Values()
		keep[a] = make(map[string]bool, len(values))
		kept := 0
		for _, v := range values {
			if rng.Float64() < fraction {
				keep[a][v] = true
				kept++
			}
		}
		if kept == 0 && len(values) > 0 {
			keep[a][values[rng.Intn(len(values))]] = true
		}
	}
	nt := NewEntityTable(t.Name, t.Schema)
	for row := 0; row < t.Len(); row++ {
		values := make(map[string]string)
		setValues := make(map[string][]string)
		for a := 0; a < t.Schema.Len(); a++ {
			attr := t.Schema.At(a)
			switch attr.Kind {
			case Atomic:
				if v := t.AtomicValue(a, row); v != MissingValue {
					if s := t.Dict(a).Value(v); keep[a][s] {
						values[attr.Name] = s
					}
				}
			case MultiValued:
				for _, v := range t.MultiValues(a, row) {
					if s := t.Dict(a).Value(v); keep[a][s] {
						setValues[attr.Name] = append(setValues[attr.Name], s)
					}
				}
			}
		}
		if _, err := nt.AppendRow(t.Keys[row], values, setValues); err != nil {
			return nil, err
		}
	}
	return nt, nil
}

// rebuildWithEntities re-attaches the rating table to transformed entity
// tables (row order preserved) and freezes.
func rebuildWithEntities(db *DB, newU, newI *EntityTable, name string) (*DB, error) {
	rt, err := NewRatingTable(db.Ratings.Dimensions...)
	if err != nil {
		return nil, err
	}
	scores := make([]Score, len(db.Ratings.Dimensions))
	for r := 0; r < db.Ratings.Len(); r++ {
		for d := range scores {
			scores[d] = db.Ratings.Scores[d][r]
		}
		if err := rt.Append(int(db.Ratings.Reviewer[r]), int(db.Ratings.Item[r]), scores); err != nil {
			return nil, err
		}
	}
	out := NewDB(name, newU, newI, rt)
	if err := out.Freeze(); err != nil {
		return nil, err
	}
	return out, nil
}
