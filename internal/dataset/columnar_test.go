package dataset

import (
	"testing"
)

// buildColumnarDB assembles a tiny frozen DB with one atomic and one
// multi-valued attribute per side, including missing values and empty sets.
func buildColumnarDB(t *testing.T) *DB {
	t.Helper()
	rs := MustSchema(
		Attribute{Name: "g", Kind: Atomic},
		Attribute{Name: "tags", Kind: MultiValued},
	)
	is := MustSchema(Attribute{Name: "city", Kind: Atomic})
	reviewers := NewEntityTable("reviewers", rs)
	items := NewEntityTable("items", is)

	rows := []struct {
		g    string
		tags []string
	}{
		{"a", []string{"x", "y"}},
		{"", nil}, // missing atomic, empty set
		{"b", []string{"y"}},
		{"a", []string{"z", "x", "y"}},
	}
	for i, r := range rows {
		if _, err := reviewers.AppendRow("u", map[string]string{"g": r.g},
			map[string][]string{"tags": r.tags}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	for _, c := range []string{"nyc", "", "sf"} {
		if _, err := items.AppendRow("i", map[string]string{"city": c}, nil); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := NewRatingTable(Dimension{Name: "overall", Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		if err := rt.Append(r%4, r%3, []Score{Score(r % 6)}); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB("columnar", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestColumnarNilBeforeFreeze: the projection must not exist before Freeze,
// so callers can detect and fall back to row-oriented access.
func TestColumnarNilBeforeFreeze(t *testing.T) {
	tbl := NewEntityTable("x", MustSchema(Attribute{Name: "a", Kind: Atomic}))
	if col := tbl.Column(0); col != nil {
		t.Fatalf("Column before Freeze = %+v, want nil", col)
	}
	if col := tbl.Column(-1); col != nil {
		t.Fatal("Column(-1) must be nil")
	}
}

// TestColumnarAtomicAliasesStorage: atomic columns are the dictionary-coded
// storage itself — every row's id must match AtomicValue, including missing.
func TestColumnarAtomicAliasesStorage(t *testing.T) {
	db := buildColumnarDB(t)
	for _, tbl := range []*EntityTable{db.Reviewers, db.Items} {
		for a := 0; a < tbl.Schema.Len(); a++ {
			if tbl.Schema.At(a).Kind != Atomic {
				continue
			}
			col := tbl.Column(a)
			if col == nil || col.Kind != Atomic {
				t.Fatalf("%s attr %d: missing atomic column", tbl.Name, a)
			}
			if col.Offsets != nil {
				t.Fatalf("%s attr %d: atomic column has CSR offsets", tbl.Name, a)
			}
			if len(col.Values) != tbl.Len() {
				t.Fatalf("%s attr %d: %d values for %d rows", tbl.Name, a, len(col.Values), tbl.Len())
			}
			for row := 0; row < tbl.Len(); row++ {
				if col.Values[row] != tbl.AtomicValue(a, row) {
					t.Fatalf("%s attr %d row %d: column %d, AtomicValue %d",
						tbl.Name, a, row, col.Values[row], tbl.AtomicValue(a, row))
				}
			}
			if col.NValues != tbl.Dict(a).Len() {
				t.Fatalf("%s attr %d: NValues %d, dict %d", tbl.Name, a, col.NValues, tbl.Dict(a).Len())
			}
		}
	}
}

// TestColumnarCSRRoundTrip: the CSR run of each row must equal MultiValues
// exactly (same ids, same sorted order), with empty rows as empty runs.
func TestColumnarCSRRoundTrip(t *testing.T) {
	db := buildColumnarDB(t)
	tbl := db.Reviewers
	a := tbl.Schema.Index("tags")
	col := tbl.Column(a)
	if col == nil || col.Kind != MultiValued {
		t.Fatal("missing multi-valued column")
	}
	if len(col.Offsets) != tbl.Len()+1 {
		t.Fatalf("offsets len %d, want %d", len(col.Offsets), tbl.Len()+1)
	}
	if col.Offsets[0] != 0 {
		t.Fatalf("offsets[0] = %d, want 0", col.Offsets[0])
	}
	for row := 0; row < tbl.Len(); row++ {
		lo, hi := col.Offsets[row], col.Offsets[row+1]
		if lo > hi || int(hi) > len(col.Values) {
			t.Fatalf("row %d: bad CSR run [%d,%d) over %d values", row, lo, hi, len(col.Values))
		}
		run := col.Values[lo:hi]
		want := tbl.MultiValues(a, row)
		if len(run) != len(want) {
			t.Fatalf("row %d: run len %d, MultiValues len %d", row, len(run), len(want))
		}
		for i := range run {
			if run[i] != want[i] {
				t.Fatalf("row %d pos %d: %d vs %d", row, i, run[i], want[i])
			}
			if int(run[i]) >= col.NValues {
				t.Fatalf("row %d: id %d out of NValues %d", row, run[i], col.NValues)
			}
		}
	}
	if int(col.Offsets[tbl.Len()]) != len(col.Values) {
		t.Fatalf("final offset %d, want %d", col.Offsets[tbl.Len()], len(col.Values))
	}
}
