package dataset

import "fmt"

// AttrColumn is the flat, scan-ready projection of one attribute column,
// the substrate of the ratingmap fused scan kernel. It removes every
// per-record pointer chase the row-oriented accessors pay:
//
//   - Atomic attributes expose the dictionary-coded value column directly:
//     Values[row] is the row's value id (MissingValue for absent values),
//     one flat array indexing per record.
//   - Multi-valued attributes are flattened into CSR form: the ids of row r
//     are Values[Offsets[r]:Offsets[r+1]], a contiguous run in one shared
//     backing array instead of a [][]ValueID slice-of-slices.
//
// Columns are built once by DB.Freeze and are immutable afterwards; they
// alias the table's dictionary-encoded storage, so they are snapshots of
// the table as frozen (the only state the rest of the system ever scans).
type AttrColumn struct {
	Kind Kind
	// NValues is the dictionary size including the reserved missing id 0:
	// every id in Values is < NValues, so a dense [NValues × scale] counter
	// block indexed by value id can never be written out of bounds.
	NValues int
	// Values holds the dictionary-coded ids: per row for atomic columns,
	// CSR-flattened for multi-valued ones.
	Values []ValueID
	// Offsets is the CSR row index for multi-valued columns (len rows+1);
	// nil for atomic columns.
	Offsets []int32
}

// buildColumnar materializes the flat projection of every attribute.
// Called by DB.Freeze; not safe to call concurrently with scans.
func (t *EntityTable) buildColumnar() error {
	t.cols = make([]AttrColumn, t.Schema.Len())
	for a := 0; a < t.Schema.Len(); a++ {
		attr := t.Schema.At(a)
		col := AttrColumn{Kind: attr.Kind, NValues: t.dicts[a].Len()}
		switch attr.Kind {
		case Atomic:
			col.Values = t.atomic[a] // alias: already flat and dictionary-coded
		case MultiValued:
			rows := t.multi[a]
			total := 0
			for _, ids := range rows {
				total += len(ids)
			}
			if total > 1<<31-2 {
				return fmt.Errorf("dataset: attribute %q has %d values, too many for int32 CSR offsets", attr.Name, total)
			}
			col.Offsets = make([]int32, len(rows)+1)
			col.Values = make([]ValueID, 0, total)
			for r, ids := range rows {
				col.Values = append(col.Values, ids...)
				col.Offsets[r+1] = int32(len(col.Values))
			}
		}
		t.cols[a] = col
	}
	return nil
}

// Column returns the flat projection of attribute index a, or nil when the
// table has not been frozen into a DB yet (callers fall back to the
// row-oriented accessors).
func (t *EntityTable) Column(a int) *AttrColumn {
	if t.cols == nil || a < 0 || a >= len(t.cols) {
		return nil
	}
	return &t.cols[a]
}
