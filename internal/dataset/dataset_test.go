package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "gender"},
		Attribute{Name: "city"},
		Attribute{Name: "tags", Kind: MultiValued},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Fatal("duplicate attribute names must be rejected")
	}
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Fatal("empty attribute name must be rejected")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if i := s.Index("city"); i != 1 {
		t.Errorf("Index(city) = %d, want 1", i)
	}
	if s.Index("nope") != -1 || s.Has("nope") {
		t.Error("missing attribute must report -1/false")
	}
	if got := s.Names(); strings.Join(got, ",") != "gender,city,tags" {
		t.Errorf("Names = %v", got)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("x")
	b := d.Intern("y")
	if a == b {
		t.Fatal("distinct values must get distinct ids")
	}
	if again := d.Intern("x"); again != a {
		t.Fatal("re-interning must return the same id")
	}
	if got := d.Value(a); got != "x" {
		t.Errorf("Value = %q", got)
	}
	if _, ok := d.Lookup("z"); ok {
		t.Error("Lookup of unknown value must fail")
	}
	if d.Value(9999) != MissingLabel {
		t.Error("unknown id must decode as missing")
	}
	if d.Len() != 3 { // missing + x + y
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if vs := d.Values(); len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Values = %v", vs)
	}
	if ids := d.IDs(); len(ids) != 2 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestEntityTableRoundTrip(t *testing.T) {
	tab := NewEntityTable("reviewers", testSchema(t))
	row, err := tab.AppendRow("u1",
		map[string]string{"gender": "F", "city": "NYC"},
		map[string][]string{"tags": {"b", "a", "a"}}) // dup collapses, order canonical
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 || row != 0 {
		t.Fatalf("unexpected row bookkeeping: len=%d row=%d", tab.Len(), row)
	}
	gi := tab.Schema.Index("gender")
	v, ok := tab.Dict(gi).Lookup("F")
	if !ok || !tab.HasValue(gi, 0, v) {
		t.Error("atomic HasValue failed")
	}
	ti := tab.Schema.Index("tags")
	for _, want := range []string{"a", "b"} {
		id, ok := tab.Dict(ti).Lookup(want)
		if !ok || !tab.HasValue(ti, 0, id) {
			t.Errorf("multi-valued HasValue(%q) failed", want)
		}
	}
	if got := len(tab.MultiValues(ti, 0)); got != 2 {
		t.Errorf("duplicate tag not collapsed: %d values", got)
	}
	// Value ids are in intern order; "b" was seen first.
	if s := tab.ValueString(ti, 0); s != "b;a" {
		t.Errorf("ValueString = %q, want b;a", s)
	}
}

func TestEntityTableMissing(t *testing.T) {
	tab := NewEntityTable("reviewers", testSchema(t))
	if _, err := tab.AppendRow("u1", nil, nil); err != nil {
		t.Fatal(err)
	}
	gi := tab.Schema.Index("gender")
	if tab.AtomicValue(gi, 0) != MissingValue {
		t.Error("absent atomic value must be missing")
	}
	if s := tab.ValueString(gi, 0); s != MissingLabel {
		t.Errorf("missing renders as %q", s)
	}
	ti := tab.Schema.Index("tags")
	if s := tab.ValueString(ti, 0); s != MissingLabel {
		t.Errorf("empty set renders as %q", s)
	}
}

func TestAtomicAttributeRejectsSet(t *testing.T) {
	tab := NewEntityTable("reviewers", testSchema(t))
	_, err := tab.AppendRow("u1", nil, map[string][]string{"gender": {"F", "M"}})
	if err == nil {
		t.Fatal("value set on atomic attribute must be rejected")
	}
}

func TestRatingTableValidation(t *testing.T) {
	if _, err := NewRatingTable(); err == nil {
		t.Fatal("rating table without dimensions must be rejected")
	}
	if _, err := NewRatingTable(Dimension{Name: "x", Scale: 1}); err == nil {
		t.Fatal("scale < 2 must be rejected")
	}
	rt, err := NewRatingTable(Dimension{Name: "overall", Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Append(0, 0, []Score{6}); err == nil {
		t.Fatal("score above scale must be rejected")
	}
	if err := rt.Append(0, 0, []Score{3, 3}); err == nil {
		t.Fatal("wrong score arity must be rejected")
	}
	if err := rt.Append(0, 0, []Score{0}); err != nil { // 0 = missing, allowed
		t.Fatal(err)
	}
	if rt.DimensionIndex("overall") != 0 || rt.DimensionIndex("nope") != -1 {
		t.Error("DimensionIndex wrong")
	}
}

// buildTinyDB assembles a small consistent database for integration-style
// tests, mirroring the Figure 2 example of the paper.
func buildTinyDB(t *testing.T) *DB {
	t.Helper()
	rs, err := NewSchema(Attribute{Name: "gender"}, Attribute{Name: "age_group"})
	if err != nil {
		t.Fatal(err)
	}
	is, err := NewSchema(Attribute{Name: "cuisine", Kind: MultiValued}, Attribute{Name: "city"})
	if err != nil {
		t.Fatal(err)
	}
	reviewers := NewEntityTable("reviewers", rs)
	items := NewEntityTable("items", is)
	type u struct{ gender, age string }
	for i, v := range []u{{"F", "middle_aged"}, {"M", "young"}, {"F", "young"}, {"M", "middle_aged"}} {
		if _, err := reviewers.AppendRow("u"+string(rune('1'+i)),
			map[string]string{"gender": v.gender, "age_group": v.age}, nil); err != nil {
			t.Fatal(err)
		}
	}
	type it struct {
		cuisines []string
		city     string
	}
	for i, v := range []it{
		{[]string{"burgers", "barbeque"}, "Charlotte"},
		{[]string{"japanese", "sushi"}, "Austin"},
		{[]string{"mexican"}, "Detroit"},
		{[]string{"pizza", "italian"}, "NYC"},
	} {
		if _, err := items.AppendRow("r"+string(rune('1'+i)), map[string]string{"city": v.city},
			map[string][]string{"cuisine": v.cuisines}); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := NewRatingTable(
		Dimension{Name: "overall", Scale: 5}, Dimension{Name: "food", Scale: 5},
		Dimension{Name: "service", Scale: 5}, Dimension{Name: "ambiance", Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	records := [][3]int{{0, 3, 4}, {1, 0, 4}, {1, 1, 3}, {2, 3, 5}, {3, 2, 2}}
	for _, r := range records {
		if err := rt.Append(r[0], r[1], []Score{Score(r[2]), 3, 4, 4}); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB("tiny", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDBFreezeAndIndexes(t *testing.T) {
	db := buildTinyDB(t)
	if !db.Frozen() {
		t.Fatal("Freeze did not mark database frozen")
	}
	if got := len(db.RecordsOfReviewer(1)); got != 2 {
		t.Errorf("reviewer 1 has %d records, want 2", got)
	}
	if got := len(db.RecordsOfItem(3)); got != 2 {
		t.Errorf("item 3 has %d records, want 2", got)
	}
}

func TestDBFreezeRejectsDanglingRefs(t *testing.T) {
	db := buildTinyDB(t)
	db.Ratings.Reviewer = append(db.Ratings.Reviewer, 99)
	db.Ratings.Item = append(db.Ratings.Item, 0)
	for d := range db.Ratings.Scores {
		db.Ratings.Scores[d] = append(db.Ratings.Scores[d], 1)
	}
	if err := db.Freeze(); err == nil {
		t.Fatal("dangling reviewer reference must fail Freeze")
	}
}

func TestDBStats(t *testing.T) {
	db := buildTinyDB(t)
	s := db.Stats()
	if s.NumAttributes != 4 {
		t.Errorf("NumAttributes = %d, want 4", s.NumAttributes)
	}
	if s.NumDimensions != 4 || s.NumRatings != 5 || s.NumReviewers != 4 || s.NumItems != 4 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MaxNumValues < 4 { // cities: Charlotte/Austin/Detroit/NYC
		t.Errorf("MaxNumValues = %d, want ≥ 4", s.MaxNumValues)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := buildTinyDB(t)

	var rbuf, ibuf, rabuf bytes.Buffer
	if err := WriteEntityCSV(&rbuf, db.Reviewers); err != nil {
		t.Fatal(err)
	}
	if err := WriteEntityCSV(&ibuf, db.Items); err != nil {
		t.Fatal(err)
	}
	if err := WriteRatingCSV(&rabuf, db); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]Kind{"cuisine": MultiValued}
	r2, err := ReadEntityCSV(&rbuf, "reviewers", kinds)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := ReadEntityCSV(&ibuf, "items", kinds)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := ReadRatingCSV(&rabuf, r2, i2)
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewDB("tiny2", r2, i2, ra2)
	if err := db2.Freeze(); err != nil {
		t.Fatal(err)
	}

	if db2.Reviewers.Len() != db.Reviewers.Len() || db2.Items.Len() != db.Items.Len() ||
		db2.Ratings.Len() != db.Ratings.Len() {
		t.Fatal("row counts changed across CSV round trip")
	}
	// Spot-check a multi-valued attribute and a score.
	ci := db2.Items.Schema.Index("cuisine")
	if s := db2.Items.ValueString(ci, 0); s != "barbeque;burgers" && s != "burgers;barbeque" {
		t.Errorf("cuisine after round trip = %q", s)
	}
	if db2.Ratings.Scores[0][0] != db.Ratings.Scores[0][0] {
		t.Error("score changed across round trip")
	}
}

func TestReadEntityCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no key column":   "name,city\na,b\n",
		"field mismatch":  "_key,city\nu1\n",
		"empty file":      "",
		"unbalanced rows": "_key,city\nu1,NYC,extra\n",
	}
	for name, input := range cases {
		if _, err := ReadEntityCSV(strings.NewReader(input), "t", nil); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadRatingCSVRejectsMalformed(t *testing.T) {
	rs, _ := NewSchema(Attribute{Name: "g"})
	reviewers := NewEntityTable("reviewers", rs)
	reviewers.AppendRow("u1", map[string]string{"g": "x"}, nil)
	items := NewEntityTable("items", rs)
	items.AppendRow("i1", map[string]string{"g": "y"}, nil)

	cases := map[string]string{
		"bad header":       "_reviewer,wrong\nu1,i1\n",
		"no scale":         "_reviewer,_item,overall\nu1,i1,3\n",
		"unknown reviewer": "_reviewer,_item,overall:5\nuX,i1,3\n",
		"unknown item":     "_reviewer,_item,overall:5\nu1,iX,3\n",
		"score overflow":   "_reviewer,_item,overall:5\nu1,i1,9\n",
		"non-numeric":      "_reviewer,_item,overall:5\nu1,i1,abc\n",
	}
	for name, input := range cases {
		if _, err := ReadRatingCSV(strings.NewReader(input), reviewers, items); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	db := buildTinyDB(t)
	dir := t.TempDir()
	if err := SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDir(dir, "reloaded", map[string]Kind{"cuisine": MultiValued})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Ratings.Len() != db.Ratings.Len() {
		t.Errorf("record count after reload: %d, want %d", db2.Ratings.Len(), db.Ratings.Len())
	}
	if !db2.Frozen() {
		t.Error("LoadDir must return a frozen database")
	}
}

func TestAttributeProfile(t *testing.T) {
	db := buildTinyDB(t)
	gi := db.Reviewers.Schema.Index("gender")
	p := db.Reviewers.Profile(gi, 0)
	if p.Name != "gender" || p.Rows != 4 || p.Missing != 0 {
		t.Fatalf("profile header wrong: %+v", p)
	}
	if p.Cardinality != 2 {
		t.Fatalf("cardinality = %d, want 2", p.Cardinality)
	}
	// 2×F, 2×M: entropy exactly 1 bit.
	if p.Entropy < 0.999 || p.Entropy > 1.001 {
		t.Fatalf("entropy = %v, want 1", p.Entropy)
	}
	if len(p.Top) != 2 || p.Top[0].Count != 2 {
		t.Fatalf("top values wrong: %v", p.Top)
	}
	// Multi-valued attribute counts per value; topN truncates.
	ci := db.Items.Schema.Index("cuisine")
	pc := db.Items.Profile(ci, 3)
	if pc.Kind != MultiValued || len(pc.Top) != 3 {
		t.Fatalf("cuisine profile: %+v", pc)
	}
	if pc.Cardinality < 7 { // 7 distinct cuisines in the fixture
		t.Fatalf("cuisine cardinality = %d", pc.Cardinality)
	}
	// Profiles covers the schema.
	if got := len(db.Items.Profiles(1)); got != db.Items.Schema.Len() {
		t.Fatalf("Profiles len = %d", got)
	}
}

func TestAttributeProfileMissing(t *testing.T) {
	tab := NewEntityTable("r", testSchema(t))
	tab.AppendRow("u1", map[string]string{"gender": "F"}, nil)
	tab.AppendRow("u2", nil, nil)
	p := tab.Profile(tab.Schema.Index("gender"), 0)
	if p.Missing != 1 || p.Cardinality != 1 {
		t.Fatalf("missing handling wrong: %+v", p)
	}
	// Single-valued attribute: zero entropy.
	if p.Entropy != 0 {
		t.Fatalf("entropy = %v, want 0", p.Entropy)
	}
}
