// Package dataset implements the subjective database of the paper (§3.1): a
// triple ⟨I, U, R⟩ of items, reviewers (users), and rating records. Items and
// reviewers carry objective attributes — atomic or multi-valued (e.g. a
// restaurant's cuisine set) — while rating records carry one numerical score
// per rating dimension on an integer scale {1..m}.
//
// Storage is columnar and dictionary-encoded: every attribute column holds
// small integer value ids into a per-attribute dictionary, which makes the
// grouping and filtering scans at the heart of rating-map generation cache
// friendly and allocation free.
package dataset

import (
	"fmt"
	"sort"
)

// Kind distinguishes atomic attributes (exactly one value per entity) from
// multi-valued attributes (a set of values per entity, like cuisine).
type Kind int

const (
	// Atomic attributes hold exactly one value per entity.
	Atomic Kind = iota
	// MultiValued attributes hold a set of values per entity; an entity
	// belongs to the group of each of its values.
	MultiValued
)

func (k Kind) String() string {
	switch k {
	case Atomic:
		return "atomic"
	case MultiValued:
		return "multi-valued"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one objective attribute of the reviewer or item table.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes with a name index.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schema literals.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// At returns the i-th attribute.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Attributes returns a copy of the attribute list.
func (s *Schema) Attributes() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Names returns the attribute names in declaration order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Dictionary maps attribute string values to dense integer ids and back.
// Id 0 is reserved for the missing value so that zeroed columns decode to
// Missing.
type Dictionary struct {
	values []string
	ids    map[string]ValueID
}

// ValueID is a dictionary-encoded attribute value. 0 means missing.
type ValueID uint32

// MissingValue is the ValueID of an absent value, and MissingLabel its
// string form.
const MissingValue ValueID = 0

// MissingLabel is how missing values print and round-trip through CSV.
const MissingLabel = "__missing__"

// NewDictionary returns an empty dictionary with the missing value
// pre-registered as id 0.
func NewDictionary() *Dictionary {
	d := &Dictionary{ids: make(map[string]ValueID)}
	d.values = append(d.values, MissingLabel)
	d.ids[MissingLabel] = MissingValue
	return d
}

// Intern returns the id of v, registering it if new. Interning the missing
// label returns MissingValue.
func (d *Dictionary) Intern(v string) ValueID {
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := ValueID(len(d.values))
	d.values = append(d.values, v)
	d.ids[v] = id
	return id
}

// Lookup returns the id of v and whether it is registered.
func (d *Dictionary) Lookup(v string) (ValueID, bool) {
	id, ok := d.ids[v]
	return id, ok
}

// Value returns the string value of id; unknown ids decode as MissingLabel.
func (d *Dictionary) Value(id ValueID) string {
	if int(id) >= len(d.values) {
		return MissingLabel
	}
	return d.values[id]
}

// Len returns the number of registered values including the missing value.
func (d *Dictionary) Len() int { return len(d.values) }

// Values returns all registered values except the missing value, sorted.
func (d *Dictionary) Values() []string {
	vs := append([]string(nil), d.values[1:]...)
	sort.Strings(vs)
	return vs
}

// IDs returns all value ids except MissingValue, in registration order.
func (d *Dictionary) IDs() []ValueID {
	ids := make([]ValueID, 0, len(d.values)-1)
	for i := 1; i < len(d.values); i++ {
		ids = append(ids, ValueID(i))
	}
	return ids
}
