package dataset

import (
	"testing"
)

// biggerDB builds a database large enough for subsetting tests.
func biggerDB(t *testing.T) *DB {
	t.Helper()
	rs, _ := NewSchema(Attribute{Name: "gender"}, Attribute{Name: "age"}, Attribute{Name: "job"})
	is, _ := NewSchema(Attribute{Name: "city"}, Attribute{Name: "kind", Kind: MultiValued})
	reviewers := NewEntityTable("reviewers", rs)
	items := NewEntityTable("items", is)
	genders := []string{"F", "M"}
	ages := []string{"young", "adult", "senior"}
	jobs := []string{"a", "b", "c", "d"}
	cities := []string{"x", "y", "z"}
	kinds := [][]string{{"k1"}, {"k1", "k2"}, {"k2", "k3"}}
	for i := 0; i < 60; i++ {
		if _, err := reviewers.AppendRow(key("u", i), map[string]string{
			"gender": genders[i%2], "age": ages[i%3], "job": jobs[i%4],
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		if _, err := items.AppendRow(key("i", i), map[string]string{"city": cities[i%3]},
			map[string][]string{"kind": kinds[i%3]}); err != nil {
			t.Fatal(err)
		}
	}
	rt, _ := NewRatingTable(Dimension{Name: "overall", Scale: 5}, Dimension{Name: "food", Scale: 5})
	for i := 0; i < 300; i++ {
		if err := rt.Append(i%60, i%15, []Score{Score(1 + i%5), Score(1 + (i+2)%5)}); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB("big", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func key(prefix string, i int) string {
	return prefix + string(rune('A'+i/26)) + string(rune('a'+i%26))
}

func TestSampleReviewers(t *testing.T) {
	db := biggerDB(t)
	sub, err := SampleReviewers(db, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Frozen() {
		t.Fatal("sampled database must be frozen")
	}
	if sub.Reviewers.Len() == 0 || sub.Reviewers.Len() >= db.Reviewers.Len() {
		t.Errorf("sampled reviewers = %d of %d", sub.Reviewers.Len(), db.Reviewers.Len())
	}
	if sub.Items.Len() != db.Items.Len() {
		t.Errorf("items must be kept whole: %d vs %d", sub.Items.Len(), db.Items.Len())
	}
	// Every record must reference a kept reviewer and preserve its scores.
	if sub.Ratings.Len() == 0 || sub.Ratings.Len() >= db.Ratings.Len() {
		t.Errorf("sampled records = %d of %d", sub.Ratings.Len(), db.Ratings.Len())
	}
	for r := 0; r < sub.Ratings.Len(); r++ {
		u := int(sub.Ratings.Reviewer[r])
		if u < 0 || u >= sub.Reviewers.Len() {
			t.Fatalf("record %d references missing reviewer %d", r, u)
		}
	}
}

func TestSampleReviewersRejectsBadFraction(t *testing.T) {
	db := biggerDB(t)
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := SampleReviewers(db, f, 1); err == nil {
			t.Errorf("fraction %v must be rejected", f)
		}
	}
}

func TestKeepAttributes(t *testing.T) {
	db := biggerDB(t)
	sub, err := KeepAttributes(db, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := sub.Reviewers.Schema.Len() + sub.Items.Schema.Len()
	if total != 3 {
		t.Errorf("kept %d attributes, want 3", total)
	}
	if sub.Reviewers.Schema.Len() < 1 || sub.Items.Schema.Len() < 1 {
		t.Error("each table must keep at least one attribute")
	}
	if sub.Ratings.Len() != db.Ratings.Len() {
		t.Error("rating records must be preserved")
	}
	// Clamping behaviour.
	all, err := KeepAttributes(db, 99, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := all.Reviewers.Schema.Len() + all.Items.Schema.Len(); got != 5 {
		t.Errorf("keepTotal beyond schema must clamp: got %d", got)
	}
}

func TestSampleAttributeValues(t *testing.T) {
	db := biggerDB(t)
	sub, err := SampleAttributeValues(db, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Reviewers.Len() != db.Reviewers.Len() {
		t.Error("entities must be preserved")
	}
	// Every attribute must retain at least one value, and no attribute may
	// gain values.
	for a := 0; a < sub.Reviewers.Schema.Len(); a++ {
		before := db.Reviewers.ValueCardinality(a)
		after := sub.Reviewers.ValueCardinality(a)
		if before > 0 && after == 0 {
			t.Errorf("attribute %d lost all values", a)
		}
		if after > before {
			t.Errorf("attribute %d gained values: %d > %d", a, after, before)
		}
	}
}
