package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSV persistence. A database serializes to three files in one directory:
// reviewers.csv, items.csv, ratings.csv. Entity files have a leading "_key"
// column followed by one column per attribute; multi-valued attributes join
// their values with ';'. The ratings file has "_reviewer","_item" key columns
// followed by one column per rating dimension, with the scale encoded in the
// header as "name:scale".

// WriteEntityCSV serializes an entity table.
func WriteEntityCSV(w io.Writer, t *EntityTable) error {
	cw := csv.NewWriter(w)
	header := append([]string{"_key"}, t.Schema.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for r := 0; r < t.Len(); r++ {
		row[0] = t.Keys[r]
		for a := 0; a < t.Schema.Len(); a++ {
			row[a+1] = t.ValueString(a, r)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEntityCSV parses an entity table with the given name and kinds; kinds
// maps attribute name → Kind, defaulting to Atomic when absent.
func ReadEntityCSV(r io.Reader, name string, kinds map[string]Kind) (*EntityTable, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s header: %w", name, err)
	}
	if len(header) == 0 || header[0] != "_key" {
		return nil, fmt.Errorf("dataset: %s: first column must be _key, got %q", name, strings.Join(header, ","))
	}
	attrs := make([]Attribute, 0, len(header)-1)
	for _, h := range header[1:] {
		attrs = append(attrs, Attribute{Name: h, Kind: kinds[h]})
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	t := NewEntityTable(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: %s line %d: %d fields, want %d", name, line, len(rec), len(header))
		}
		values := make(map[string]string)
		setValues := make(map[string][]string)
		for a, attr := range attrs {
			cell := rec[a+1]
			if cell == MissingLabel {
				continue
			}
			if attr.Kind == MultiValued {
				setValues[attr.Name] = strings.Split(cell, ";")
			} else {
				values[attr.Name] = cell
			}
		}
		if _, err := t.AppendRow(rec[0], values, setValues); err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: %w", name, line, err)
		}
	}
	return t, nil
}

// WriteRatingCSV serializes a rating table using entity keys as references.
func WriteRatingCSV(w io.Writer, db *DB) error {
	cw := csv.NewWriter(w)
	header := []string{"_reviewer", "_item"}
	for _, d := range db.Ratings.Dimensions {
		header = append(header, fmt.Sprintf("%s:%d", d.Name, d.Scale))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for r := 0; r < db.Ratings.Len(); r++ {
		row[0] = db.Reviewers.Keys[db.Ratings.Reviewer[r]]
		row[1] = db.Items.Keys[db.Ratings.Item[r]]
		for d := range db.Ratings.Dimensions {
			row[d+2] = strconv.Itoa(int(db.Ratings.Scores[d][r]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRatingCSV parses a rating table, resolving entity keys through the
// already-loaded reviewer and item tables.
func ReadRatingCSV(r io.Reader, reviewers, items *EntityTable) (*RatingTable, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading ratings header: %w", err)
	}
	if len(header) < 3 || header[0] != "_reviewer" || header[1] != "_item" {
		return nil, fmt.Errorf("dataset: ratings header must start with _reviewer,_item")
	}
	dims := make([]Dimension, 0, len(header)-2)
	for _, h := range header[2:] {
		name, scaleStr, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("dataset: rating column %q missing :scale suffix", h)
		}
		scale, err := strconv.Atoi(scaleStr)
		if err != nil {
			return nil, fmt.Errorf("dataset: rating column %q: bad scale: %w", h, err)
		}
		dims = append(dims, Dimension{Name: name, Scale: scale})
	}
	rt, err := NewRatingTable(dims...)
	if err != nil {
		return nil, err
	}
	uIndex := keyIndex(reviewers.Keys)
	iIndex := keyIndex(items.Keys)
	scores := make([]Score, len(dims))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: ratings line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: ratings line %d: %d fields, want %d", line, len(rec), len(header))
		}
		u, ok := uIndex[rec[0]]
		if !ok {
			return nil, fmt.Errorf("dataset: ratings line %d: unknown reviewer %q", line, rec[0])
		}
		i, ok := iIndex[rec[1]]
		if !ok {
			return nil, fmt.Errorf("dataset: ratings line %d: unknown item %q", line, rec[1])
		}
		for d := range dims {
			v, err := strconv.Atoi(rec[d+2])
			if err != nil {
				return nil, fmt.Errorf("dataset: ratings line %d dim %q: %w", line, dims[d].Name, err)
			}
			if v < 0 || v > dims[d].Scale {
				return nil, fmt.Errorf("dataset: ratings line %d dim %q: score %d out of 0..%d", line, dims[d].Name, v, dims[d].Scale)
			}
			scores[d] = Score(v)
		}
		if err := rt.Append(u, i, scores); err != nil {
			return nil, fmt.Errorf("dataset: ratings line %d: %w", line, err)
		}
	}
	return rt, nil
}

func keyIndex(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// SaveDir writes the database as reviewers.csv, items.csv, ratings.csv in
// dir, creating it if needed.
func SaveDir(db *DB, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("dataset: writing %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write("reviewers.csv", func(w io.Writer) error { return WriteEntityCSV(w, db.Reviewers) }); err != nil {
		return err
	}
	if err := write("items.csv", func(w io.Writer) error { return WriteEntityCSV(w, db.Items) }); err != nil {
		return err
	}
	return write("ratings.csv", func(w io.Writer) error { return WriteRatingCSV(w, db) })
}

// LoadDir reads a database previously written by SaveDir. kinds carries the
// multi-valued attribute declarations for both entity tables (attribute
// names are unique across tables in all shipped datasets).
func LoadDir(dir, name string, kinds map[string]Kind) (*DB, error) {
	open := func(file string) (*os.File, error) { return os.Open(filepath.Join(dir, file)) }

	rf, err := open("reviewers.csv")
	if err != nil {
		return nil, err
	}
	reviewers, err := ReadEntityCSV(rf, "reviewers", kinds)
	rf.Close()
	if err != nil {
		return nil, err
	}

	itf, err := open("items.csv")
	if err != nil {
		return nil, err
	}
	items, err := ReadEntityCSV(itf, "items", kinds)
	itf.Close()
	if err != nil {
		return nil, err
	}

	raf, err := open("ratings.csv")
	if err != nil {
		return nil, err
	}
	ratings, err := ReadRatingCSV(raf, reviewers, items)
	raf.Close()
	if err != nil {
		return nil, err
	}

	db := NewDB(name, reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}
