package dataset

import (
	"math"
	"sort"
)

// AttributeProfile summarizes one objective attribute for exploration UIs
// and workload analysis: value cardinality, coverage, Shannon entropy of
// the value distribution, and the most frequent values.
type AttributeProfile struct {
	Name string
	Kind Kind
	// Cardinality is the number of distinct non-missing values.
	Cardinality int
	// Missing is the number of rows with no value.
	Missing int
	// Rows is the table size.
	Rows int
	// Entropy is the Shannon entropy (bits) of the value distribution;
	// higher means the attribute splits the table more evenly.
	Entropy float64
	// Top holds the most frequent values, descending.
	Top []ValueCount
}

// ValueCount pairs a value with its row count.
type ValueCount struct {
	Value string
	Count int
}

// Profile computes the attribute profile of attribute index a, keeping at
// most topN most-frequent values (0 keeps all).
func (t *EntityTable) Profile(a, topN int) AttributeProfile {
	attr := t.Schema.At(a)
	p := AttributeProfile{Name: attr.Name, Kind: attr.Kind, Rows: t.Len()}
	counts := make(map[ValueID]int)
	total := 0
	for row := 0; row < t.Len(); row++ {
		switch attr.Kind {
		case Atomic:
			v := t.AtomicValue(a, row)
			if v == MissingValue {
				p.Missing++
				continue
			}
			counts[v]++
			total++
		case MultiValued:
			vs := t.MultiValues(a, row)
			if len(vs) == 0 {
				p.Missing++
				continue
			}
			for _, v := range vs {
				counts[v]++
				total++
			}
		}
	}
	p.Cardinality = len(counts)
	for v, c := range counts {
		p.Top = append(p.Top, ValueCount{Value: t.Dict(a).Value(v), Count: c})
		if total > 0 {
			q := float64(c) / float64(total)
			p.Entropy -= q * math.Log2(q)
		}
	}
	sort.Slice(p.Top, func(i, j int) bool {
		if p.Top[i].Count != p.Top[j].Count {
			return p.Top[i].Count > p.Top[j].Count
		}
		return p.Top[i].Value < p.Top[j].Value
	})
	if topN > 0 && len(p.Top) > topN {
		p.Top = p.Top[:topN]
	}
	return p
}

// Profiles computes profiles for every attribute of the table.
func (t *EntityTable) Profiles(topN int) []AttributeProfile {
	out := make([]AttributeProfile, 0, t.Schema.Len())
	for a := 0; a < t.Schema.Len(); a++ {
		out = append(out, t.Profile(a, topN))
	}
	return out
}
