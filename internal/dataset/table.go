package dataset

import (
	"fmt"
	"sort"
)

// EntityTable stores the objective attributes of reviewers or items in
// columnar, dictionary-encoded form. Row i describes the entity with dense
// id i; the application-level identifier (e.g. "user 42") is kept in Keys.
type EntityTable struct {
	Name   string
	Schema *Schema
	Keys   []string // external identifier per row

	dicts []*Dictionary // one per attribute
	// atomic[a][row] is the single value id of attribute a for row, or
	// MissingValue. Only populated for atomic attributes.
	atomic [][]ValueID
	// multi[a][row] is the sorted set of value ids of attribute a for row.
	// Only populated for multi-valued attributes.
	multi [][][]ValueID
	// cols are the flat scan-kernel projections, built by DB.Freeze
	// (see columnar.go); nil until then.
	cols []AttrColumn
}

// NewEntityTable creates an empty table with the given schema.
func NewEntityTable(name string, schema *Schema) *EntityTable {
	t := &EntityTable{Name: name, Schema: schema}
	n := schema.Len()
	t.dicts = make([]*Dictionary, n)
	t.atomic = make([][]ValueID, n)
	t.multi = make([][][]ValueID, n)
	for i := 0; i < n; i++ {
		t.dicts[i] = NewDictionary()
	}
	return t
}

// Len returns the number of rows (entities).
func (t *EntityTable) Len() int { return len(t.Keys) }

// Dict returns the dictionary of attribute index a.
func (t *EntityTable) Dict(a int) *Dictionary { return t.dicts[a] }

// DictByName returns the dictionary of the named attribute, or nil.
func (t *EntityTable) DictByName(name string) *Dictionary {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.dicts[i]
}

// AppendRow adds an entity. values maps attribute name → string value for
// atomic attributes; setValues maps attribute name → value set for
// multi-valued attributes. Missing entries are stored as missing. It returns
// the dense row id.
func (t *EntityTable) AppendRow(key string, values map[string]string, setValues map[string][]string) (int, error) {
	row := len(t.Keys)
	t.Keys = append(t.Keys, key)
	for a := 0; a < t.Schema.Len(); a++ {
		attr := t.Schema.At(a)
		switch attr.Kind {
		case Atomic:
			v, ok := values[attr.Name]
			if !ok || v == "" {
				t.atomic[a] = append(t.atomic[a], MissingValue)
			} else {
				t.atomic[a] = append(t.atomic[a], t.dicts[a].Intern(v))
			}
			if sv, bad := setValues[attr.Name]; bad && len(sv) > 0 {
				return 0, fmt.Errorf("dataset: atomic attribute %q given a value set", attr.Name)
			}
		case MultiValued:
			vs := setValues[attr.Name]
			if single, ok := values[attr.Name]; ok && single != "" {
				vs = append(vs, single)
			}
			ids := make([]ValueID, 0, len(vs))
			seen := make(map[ValueID]bool, len(vs))
			for _, v := range vs {
				if v == "" {
					continue
				}
				id := t.dicts[a].Intern(v)
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			t.multi[a] = append(t.multi[a], ids)
		}
	}
	return row, nil
}

// AtomicValue returns the value id of atomic attribute a for the given row.
func (t *EntityTable) AtomicValue(a, row int) ValueID { return t.atomic[a][row] }

// MultiValues returns the value-id set of multi-valued attribute a for row.
func (t *EntityTable) MultiValues(a, row int) []ValueID { return t.multi[a][row] }

// HasValue reports whether the row has the given value for attribute a,
// handling both attribute kinds.
func (t *EntityTable) HasValue(a, row int, v ValueID) bool {
	switch t.Schema.At(a).Kind {
	case Atomic:
		return t.atomic[a][row] == v
	case MultiValued:
		ids := t.multi[a][row]
		i := sort.Search(len(ids), func(i int) bool { return ids[i] >= v })
		return i < len(ids) && ids[i] == v
	}
	return false
}

// ValueString renders the row's value(s) of attribute a for display.
func (t *EntityTable) ValueString(a, row int) string {
	attr := t.Schema.At(a)
	switch attr.Kind {
	case Atomic:
		return t.dicts[a].Value(t.atomic[a][row])
	case MultiValued:
		ids := t.multi[a][row]
		if len(ids) == 0 {
			return MissingLabel
		}
		s := ""
		for i, id := range ids {
			if i > 0 {
				s += ";"
			}
			s += t.dicts[a].Value(id)
		}
		return s
	}
	return ""
}

// ValueCardinality returns the number of distinct non-missing values of the
// attribute at index a.
func (t *EntityTable) ValueCardinality(a int) int { return t.dicts[a].Len() - 1 }

// MaxValueCardinality returns the largest value cardinality over all
// attributes (the "Max # of vals" column of Table 2).
func (t *EntityTable) MaxValueCardinality() int {
	maxCard := 0
	for a := 0; a < t.Schema.Len(); a++ {
		if c := t.ValueCardinality(a); c > maxCard {
			maxCard = c
		}
	}
	return maxCard
}

// Dimension names a subjective rating dimension, e.g. "overall" or "food".
type Dimension struct {
	Name string
	// Scale is the number of rating levels m; scores are integers in {1..m}.
	Scale int
}

// Score is one integer rating score in {1..Scale}; 0 denotes missing.
type Score uint8

// RatingTable stores the rating records ⟨u, i, s₁..s_t⟩ in columnar form:
// parallel slices of reviewer row ids, item row ids, and one score column per
// rating dimension.
type RatingTable struct {
	Dimensions []Dimension
	Reviewer   []int32 // dense reviewer row id per record
	Item       []int32 // dense item row id per record
	Scores     [][]Score
}

// NewRatingTable creates an empty rating table over the given dimensions.
func NewRatingTable(dims ...Dimension) (*RatingTable, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dataset: rating table needs at least one dimension")
	}
	rt := &RatingTable{Dimensions: append([]Dimension(nil), dims...)}
	rt.Scores = make([][]Score, len(dims))
	for i, d := range dims {
		if d.Scale < 2 {
			return nil, fmt.Errorf("dataset: dimension %q has scale %d < 2", d.Name, d.Scale)
		}
		rt.Scores[i] = nil
		_ = i
	}
	return rt, nil
}

// Len returns the number of rating records.
func (rt *RatingTable) Len() int { return len(rt.Reviewer) }

// DimensionIndex returns the index of the named dimension, or -1.
func (rt *RatingTable) DimensionIndex(name string) int {
	for i, d := range rt.Dimensions {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Append adds one rating record. scores must have one entry per dimension;
// each must be in {0..scale} where 0 means missing.
func (rt *RatingTable) Append(reviewer, item int, scores []Score) error {
	if len(scores) != len(rt.Dimensions) {
		return fmt.Errorf("dataset: got %d scores, want %d", len(scores), len(rt.Dimensions))
	}
	for d, s := range scores {
		if int(s) > rt.Dimensions[d].Scale {
			return fmt.Errorf("dataset: score %d out of scale 1..%d for dimension %q",
				s, rt.Dimensions[d].Scale, rt.Dimensions[d].Name)
		}
	}
	rt.Reviewer = append(rt.Reviewer, int32(reviewer))
	rt.Item = append(rt.Item, int32(item))
	for d, s := range scores {
		rt.Scores[d] = append(rt.Scores[d], s)
	}
	return nil
}

// DB is the subjective database triple ⟨I, U, R⟩ of the paper with an index
// from entities to their rating records.
type DB struct {
	Name      string
	Reviewers *EntityTable
	Items     *EntityTable
	Ratings   *RatingTable

	// byReviewer[u] and byItem[i] list the rating-record positions of each
	// entity, built by Freeze.
	byReviewer [][]int32
	byItem     [][]int32
	frozen     bool
}

// NewDB assembles a database from its three tables. Call Freeze after
// loading all records.
func NewDB(name string, reviewers, items *EntityTable, ratings *RatingTable) *DB {
	return &DB{Name: name, Reviewers: reviewers, Items: items, Ratings: ratings}
}

// Freeze validates record references and builds the per-entity record
// indexes. It must be called once after loading and before exploration.
func (db *DB) Freeze() error {
	nU, nI := db.Reviewers.Len(), db.Items.Len()
	db.byReviewer = make([][]int32, nU)
	db.byItem = make([][]int32, nI)
	for r := 0; r < db.Ratings.Len(); r++ {
		u, i := db.Ratings.Reviewer[r], db.Ratings.Item[r]
		if int(u) < 0 || int(u) >= nU {
			return fmt.Errorf("dataset: record %d references unknown reviewer %d", r, u)
		}
		if int(i) < 0 || int(i) >= nI {
			return fmt.Errorf("dataset: record %d references unknown item %d", r, i)
		}
		db.byReviewer[u] = append(db.byReviewer[u], int32(r))
		db.byItem[i] = append(db.byItem[i], int32(r))
	}
	if err := db.Reviewers.buildColumnar(); err != nil {
		return err
	}
	if err := db.Items.buildColumnar(); err != nil {
		return err
	}
	db.frozen = true
	return nil
}

// Frozen reports whether Freeze has completed.
func (db *DB) Frozen() bool { return db.frozen }

// RecordsOfReviewer returns the rating-record positions of reviewer row u.
func (db *DB) RecordsOfReviewer(u int) []int32 { return db.byReviewer[u] }

// RecordsOfItem returns the rating-record positions of item row i.
func (db *DB) RecordsOfItem(i int) []int32 { return db.byItem[i] }

// Stats summarizes the database as in the paper's Table 2.
type Stats struct {
	Name          string
	NumAttributes int
	MaxNumValues  int
	NumDimensions int
	NumRatings    int
	NumReviewers  int
	NumItems      int
}

// Stats computes the Table 2 row for this database. The attribute count is
// the total over both entity tables, as in the paper.
func (db *DB) Stats() Stats {
	maxVals := db.Reviewers.MaxValueCardinality()
	if v := db.Items.MaxValueCardinality(); v > maxVals {
		maxVals = v
	}
	return Stats{
		Name:          db.Name,
		NumAttributes: db.Reviewers.Schema.Len() + db.Items.Schema.Len(),
		MaxNumValues:  maxVals,
		NumDimensions: len(db.Ratings.Dimensions),
		NumRatings:    db.Ratings.Len(),
		NumReviewers:  db.Reviewers.Len(),
		NumItems:      db.Items.Len(),
	}
}
