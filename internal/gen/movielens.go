package gen

import (
	"fmt"
	"math/rand"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// Movielens generates a MovieLens-100K-shaped database (Table 2 row 1):
// 943 reviewers, 1682 movies, 100K single-dimension ratings on a 1..5
// scale, 12 objective attributes in total, with the largest value
// cardinality 29 (release_year), mirroring the enrichment the paper applied
// (city/state/age_group from zip and age; release year and decade from the
// release date).
func Movielens(cfg Config) (*dataset.DB, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	s := cfg.scale()

	nU := scaleN(943, s, 20)
	nI := scaleN(1682, s, 30)
	nR := scaleN(100_000, s, 400)

	reviewerSchema := dataset.MustSchema(
		dataset.Attribute{Name: "gender"},
		dataset.Attribute{Name: "age_group"},
		dataset.Attribute{Name: "occupation"},
		dataset.Attribute{Name: "state"},
		dataset.Attribute{Name: "city"},
		dataset.Attribute{Name: "zip_region"},
	)
	itemSchema := dataset.MustSchema(
		dataset.Attribute{Name: "genre", Kind: dataset.MultiValued},
		dataset.Attribute{Name: "release_year"},
		dataset.Attribute{Name: "decade"},
		dataset.Attribute{Name: "era"},
		dataset.Attribute{Name: "language"},
		dataset.Attribute{Name: "length_class"},
	)

	genders := []string{"M", "F", "unspecified"}
	ageGroups := []string{"teen", "young", "adult", "middle_aged", "senior"}
	occupations := []string{
		"student", "programmer", "engineer", "educator", "administrator",
		"writer", "artist", "librarian", "technician", "executive", "scientist",
		"entertainment", "marketing", "healthcare", "retired", "lawyer",
		"salesman", "doctor", "homemaker", "none", "other",
	} // 21 values, matching MovieLens
	states := []string{"CA", "NY", "TX", "IL", "MN", "WA", "MA", "FL", "PA", "OH", "GA", "MI"}
	cities := seq("city_", 25)
	zipRegions := seq("zip_", 10)

	genres := []string{
		"action", "adventure", "animation", "children", "comedy", "crime",
		"documentary", "drama", "fantasy", "film-noir", "horror", "musical",
		"mystery", "romance", "sci-fi", "thriller", "war", "western",
	} // 18 genres, matching MovieLens
	releaseYears := years(1970, 29) // 29 values: the Table 2 max cardinality
	languages := []string{"english", "french", "spanish", "german", "japanese", "italian"}
	lengthClasses := []string{"short", "standard", "long", "epic"}

	reviewers := dataset.NewEntityTable("reviewers", reviewerSchema)
	for u := 0; u < nU; u++ {
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u+1), map[string]string{
			"gender":     pickWeighted(rng, genders, []float64{0.55, 0.40, 0.05}),
			"age_group":  pickWeighted(rng, ageGroups, []float64{0.1, 0.35, 0.25, 0.2, 0.1}),
			"occupation": pick(rng, occupations),
			"state":      pick(rng, states),
			"city":       pick(rng, cities),
			"zip_region": pick(rng, zipRegions),
		}, nil); err != nil {
			return nil, err
		}
	}

	items := dataset.NewEntityTable("items", itemSchema)
	for i := 0; i < nI; i++ {
		yr := pick(rng, releaseYears)
		decade := decadeOf(yr)
		era := "classic"
		if decade == "1990s" {
			era = "modern"
		}
		nGenres := 1 + rng.Intn(3)
		gs := make([]string, 0, nGenres)
		seen := map[string]bool{}
		for len(gs) < nGenres {
			g := pick(rng, genres)
			if !seen[g] {
				seen[g] = true
				gs = append(gs, g)
			}
		}
		if _, err := items.AppendRow(fmt.Sprintf("m%d", i+1), map[string]string{
			"release_year": yr,
			"decade":       decade,
			"era":          era,
			"language":     pickWeighted(rng, languages, []float64{0.7, 0.08, 0.07, 0.05, 0.05, 0.05}),
			"length_class": pickWeighted(rng, lengthClasses, []float64{0.1, 0.6, 0.25, 0.05}),
		}, map[string][]string{"genre": gs}); err != nil {
			return nil, err
		}
	}

	ratings, err := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 5})
	if err != nil {
		return nil, err
	}
	bias := newBiasModel(rand.New(rand.NewSource(cfg.seed()+7)), 0.6)
	cfg.apply(bias)
	if err := fillRatings(rng, bias, reviewers, items, ratings, nR, 20); err != nil {
		return nil, err
	}

	db := dataset.NewDB("Movielens", reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}

func decadeOf(year string) string {
	if len(year) != 4 {
		return "1990s"
	}
	return year[:3] + "0s"
}

// fillRatings draws nR rating records. Every reviewer gets at least
// minPerReviewer ratings when the record budget allows (MovieLens keeps
// only reviewers with ≥20 ratings); the remainder follows a long-tailed
// activity distribution.
func fillRatings(rng *rand.Rand, bias *biasModel, reviewers, items *dataset.EntityTable,
	ratings *dataset.RatingTable, nR, minPerReviewer int) error {
	nU, nI := reviewers.Len(), items.Len()
	if nU == 0 || nI == 0 {
		return fmt.Errorf("gen: cannot rate with %d reviewers and %d items", nU, nI)
	}
	dims := len(ratings.Dimensions)
	scores := make([]dataset.Score, dims)

	rate := func(u int) error {
		i := rng.Intn(nI)
		for d := 0; d < dims; d++ {
			center := 3.0 +
				bias.entityBias(query.ReviewerSide, reviewers, u, d) +
				bias.entityBias(query.ItemSide, items, i, d)
			scores[d] = score(rng, ratings.Dimensions[d].Scale, center)
		}
		return ratings.Append(u, i, scores)
	}

	base := minPerReviewer * nU
	if base > nR {
		minPerReviewer = nR / nU
		base = minPerReviewer * nU
	}
	for u := 0; u < nU; u++ {
		for j := 0; j < minPerReviewer; j++ {
			if err := rate(u); err != nil {
				return err
			}
		}
	}
	mean := float64(nR-base) / float64(nU)
	for ratings.Len() < nR {
		u := rng.Intn(nU)
		n := 1
		if mean > 1 {
			n = zipfish(rng, mean/2)
		}
		for j := 0; j < n && ratings.Len() < nR; j++ {
			if err := rate(u); err != nil {
				return err
			}
		}
	}
	return nil
}
