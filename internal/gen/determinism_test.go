package gen

import (
	"testing"

	"subdex/internal/dataset"
)

// pinnedDigests fixes the FNV-1a content digest of every generator at its
// default seed and the scale the golden-trace regression suite uses
// (internal/workload/testdata/golden). A failure here means math/rand,
// float handling, or a generator changed underneath us — the drift would
// otherwise surface as inscrutable golden-trace diffs one layer up, or
// worse, silently change every experiment artifact. If the change is
// intentional (a deliberate generator edit), update the constant AND
// refresh the golden traces:
//
//	go test ./internal/gen -run TestGeneratorDigestPinned -v
//	go test ./internal/workload -run TestGolden -update
var pinnedDigests = []struct {
	name   string
	gen    func(Config) (*dataset.DB, error)
	cfg    Config
	digest string
}{
	{"Demo", Demo, Config{Seed: 1, Scale: 1}, "fnv1a:ad0a4b4f4cb628be"},
	{"Movielens", Movielens, Config{Seed: 1, Scale: 0.02}, "fnv1a:cafc74ccec452992"},
	{"Yelp", Yelp, Config{Seed: 1, Scale: 0.02}, "fnv1a:991fa1c9c9ffcc40"},
	{"Hotels", Hotels, Config{Seed: 1, Scale: 0.02}, "fnv1a:4689b3334945d188"},
}

func TestGeneratorDigestPinned(t *testing.T) {
	for _, tc := range pinnedDigests {
		db, err := tc.gen(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := Digest(db)
		t.Logf("%s(seed=%d, scale=%g) = %s", tc.name, tc.cfg.Seed, tc.cfg.Scale, got)
		if got != tc.digest {
			t.Errorf("%s dataset digest drifted:\n  got  %s\n  want %s\n(platform/toolchain drift or an intentional generator change; see comment above)",
				tc.name, got, tc.digest)
		}
	}
}

// TestDigestDiscriminates sanity-checks the digest itself: different seeds
// must fingerprint differently, identical configs identically.
func TestDigestDiscriminates(t *testing.T) {
	a, err := Demo(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Demo(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Demo(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if Digest(a) != Digest(b) {
		t.Error("same config must digest identically")
	}
	if Digest(a) == Digest(c) {
		t.Error("different seeds must digest differently")
	}
}

// TestDemoShape pins the demo generator's schema the way TestSchemaShapes
// pins the paper-shaped ones.
func TestDemoShape(t *testing.T) {
	db, err := Demo(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.NumAttributes != 6 {
		t.Errorf("attributes = %d, want 6", s.NumAttributes)
	}
	if s.NumDimensions != 2 {
		t.Errorf("dimensions = %d, want 2", s.NumDimensions)
	}
	if !db.Frozen() {
		t.Error("Demo must freeze")
	}
	if s.NumRatings < 300 {
		t.Errorf("ratings = %d, want a usable demo corpus", s.NumRatings)
	}
}
