package gen

import (
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := Movielens(Config{Seed: 4, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Movielens(Config{Seed: 4, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratings.Len() != b.Ratings.Len() {
		t.Fatal("same seed must produce same record count")
	}
	for r := 0; r < a.Ratings.Len(); r++ {
		if a.Ratings.Scores[0][r] != b.Ratings.Scores[0][r] {
			t.Fatalf("scores diverge at record %d", r)
		}
	}
	c, err := Movielens(Config{Seed: 5, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Ratings.Len() == c.Ratings.Len()
	if same {
		diff := false
		for r := 0; r < a.Ratings.Len(); r++ {
			if a.Ratings.Scores[0][r] != c.Ratings.Scores[0][r] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestSchemaShapes(t *testing.T) {
	cases := []struct {
		name    string
		gen     func(Config) (*dataset.DB, error)
		atts    int
		dims    int
		maxVals int // at full scale; small scale may undershoot
	}{
		{"Movielens", Movielens, 12, 1, 29},
		{"Yelp", Yelp, 24, 4, 13},
		{"Hotels", Hotels, 8, 4, 62},
	}
	for _, tc := range cases {
		db, err := tc.gen(Config{Seed: 2, Scale: 0.02})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		s := db.Stats()
		if s.NumAttributes != tc.atts {
			t.Errorf("%s: attributes = %d, want %d", tc.name, s.NumAttributes, tc.atts)
		}
		if s.NumDimensions != tc.dims {
			t.Errorf("%s: dimensions = %d, want %d", tc.name, s.NumDimensions, tc.dims)
		}
		if s.MaxNumValues > tc.maxVals {
			t.Errorf("%s: max values = %d exceeds paper's %d", tc.name, s.MaxNumValues, tc.maxVals)
		}
		if !db.Frozen() {
			t.Errorf("%s: generator must freeze", tc.name)
		}
	}
}

func TestScoresInScale(t *testing.T) {
	db, err := Yelp(Config{Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for d, dim := range db.Ratings.Dimensions {
		for r := 0; r < db.Ratings.Len(); r++ {
			s := db.Ratings.Scores[d][r]
			if s < 1 || int(s) > dim.Scale {
				t.Fatalf("score %d out of 1..%d at dim %d record %d", s, dim.Scale, d, r)
			}
		}
	}
}

func TestPlantIrregularGroups(t *testing.T) {
	db, err := Movielens(Config{Seed: 4, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := PlantIrregularGroups(db, 99, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (one per side)", len(groups))
	}
	sides := map[query.Side]bool{}
	for _, g := range groups {
		sides[g.Side] = true
		if n := len(g.Selectors); n < 2 || n > 3 {
			t.Errorf("group described by %d pairs, want 2-3", n)
		}
		if g.NumEntities < 5 {
			t.Errorf("group has %d entities, want ≥ 5", g.NumEntities)
		}
		if g.NumRecords == 0 {
			t.Error("group covers no records")
		}
		// Every record of every member entity must have score 1 on the dim.
		var t2 *dataset.EntityTable
		if g.Side == query.ReviewerSide {
			t2 = db.Reviewers
		} else {
			t2 = db.Items
		}
		members := matchingRows(t2, g.Selectors)
		if len(members) != g.NumEntities {
			t.Errorf("ground truth entity count mismatch: %d vs %d", len(members), g.NumEntities)
		}
		for _, row := range members {
			var recs []int32
			if g.Side == query.ReviewerSide {
				recs = db.RecordsOfReviewer(row)
			} else {
				recs = db.RecordsOfItem(row)
			}
			for _, r := range recs {
				if db.Ratings.Scores[g.Dim][r] != 1 {
					t.Fatalf("member record %d has score %d on dim %d, want 1",
						r, db.Ratings.Scores[g.Dim][r], g.Dim)
				}
			}
		}
	}
	if !sides[query.ReviewerSide] || !sides[query.ItemSide] {
		t.Error("one group per side expected")
	}
}

func TestPlantRequiresFrozen(t *testing.T) {
	db, _ := Movielens(Config{Seed: 4, Scale: 0.03})
	raw := dataset.NewDB("raw", db.Reviewers, db.Items, db.Ratings)
	if _, err := PlantIrregularGroups(raw, 1, 1, 5); err == nil {
		t.Fatal("unfrozen database must be rejected")
	}
}

func TestInsightPlantingVerifies(t *testing.T) {
	insights := YelpInsights()
	db, err := Yelp(Config{Seed: 8, Scale: 0.1, ForcedBiases: InsightBiases(insights)})
	if err != nil {
		t.Fatal(err)
	}
	verified := 0
	for _, in := range insights {
		ok, err := VerifyInsight(db, in, 10)
		if err != nil {
			t.Fatalf("%s: %v", in.ID, err)
		}
		if ok {
			verified++
		}
	}
	// All five should typically hold; demand at least four (value presence
	// at reduced scale is stochastic).
	if verified < 4 {
		t.Errorf("only %d/%d planted insights verified", verified, len(insights))
	}
}

func TestInsightsNotPresentWithoutPlanting(t *testing.T) {
	// Without forced biases most insights should NOT hold — the planting
	// must be the cause.
	db, err := Yelp(Config{Seed: 8, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	holds := 0
	for _, in := range YelpInsights() {
		if ok, _ := VerifyInsight(db, in, 10); ok {
			holds++
		}
	}
	if holds > 2 {
		t.Errorf("%d insights hold without planting; expected ≤ 2 by chance", holds)
	}
}

func TestMovielensInsightSet(t *testing.T) {
	ins := MovielensInsights()
	if len(ins) != 5 {
		t.Fatalf("movielens insights = %d, want 5", len(ins))
	}
	for _, in := range ins {
		if in.Statement == "" || in.Attr == "" || in.Value == "" {
			t.Errorf("%s: incomplete insight", in.ID)
		}
		fb := in.ForcedBias()
		if in.Lowest && fb.Bias >= 0 || !in.Lowest && fb.Bias <= 0 {
			t.Errorf("%s: bias direction wrong", in.ID)
		}
	}
}

func TestGenerateReviews(t *testing.T) {
	c := GenerateReviews(7, 25, []string{"food", "service"})
	if len(c.Texts) != 25 || len(c.Truth) != 25 {
		t.Fatalf("corpus sizes: %d texts, %d truths", len(c.Texts), len(c.Truth))
	}
	for i, text := range c.Texts {
		if text == "" {
			t.Fatalf("empty review at %d", i)
		}
		for d, s := range c.Truth[i] {
			if s < 1 || s > 5 {
				t.Fatalf("latent score out of range: %s=%d", d, s)
			}
		}
	}
}
