package gen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"subdex/internal/dataset"
)

// Demo generates the small café-review database used by the interactive
// demo, the load harness's smoke workload, and the golden-trace regression
// suite: ~400 reviewers, 24 cafés, ~3,000 rating records on 2 rating
// dimensions (overall, value). It is deliberately tiny — every exploration
// step costs well under a millisecond — so closed-loop simulated-user
// populations (internal/workload, cmd/sdeload) can run thousands of steps
// in a CI smoke job, while the schema still exercises both entity sides,
// a multi-valued attribute, and multi-dimensional ratings.
func Demo(cfg Config) (*dataset.DB, error) {
	rng := rand.New(rand.NewSource(cfg.seed() + 300))
	s := cfg.scale()

	nU := scaleN(400, s, 40)
	nI := scaleN(24, s, 8)
	nR := scaleN(3_000, s, 300)

	reviewerSchema := dataset.MustSchema(
		dataset.Attribute{Name: "age_group"},
		dataset.Attribute{Name: "occupation"},
		dataset.Attribute{Name: "visit_time"},
	)
	itemSchema := dataset.MustSchema(
		dataset.Attribute{Name: "roast", Kind: dataset.MultiValued},
		dataset.Attribute{Name: "district"},
		dataset.Attribute{Name: "price_range"},
	)

	ageGroups := []string{"young", "adult", "senior"}
	occupations := []string{"student", "programmer", "teacher", "retired", "other"}
	visitTimes := []string{"morning", "afternoon", "evening"}

	roasts := []string{"light", "medium", "dark", "decaf"}
	districts := []string{"old_town", "harbor", "campus", "uptown"}
	priceRanges := []string{"$", "$$", "$$$"}

	reviewers := dataset.NewEntityTable("reviewers", reviewerSchema)
	for u := 0; u < nU; u++ {
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u+1), map[string]string{
			"age_group":  pickWeighted(rng, ageGroups, []float64{0.4, 0.45, 0.15}),
			"occupation": pick(rng, occupations),
			"visit_time": pickWeighted(rng, visitTimes, []float64{0.45, 0.3, 0.25}),
		}, nil); err != nil {
			return nil, err
		}
	}

	items := dataset.NewEntityTable("items", itemSchema)
	for i := 0; i < nI; i++ {
		nRoast := 1 + rng.Intn(2)
		rs := make([]string, 0, nRoast)
		seen := map[string]bool{}
		for len(rs) < nRoast {
			r := pick(rng, roasts)
			if !seen[r] {
				seen[r] = true
				rs = append(rs, r)
			}
		}
		if _, err := items.AppendRow(fmt.Sprintf("c%d", i+1), map[string]string{
			"district":    pick(rng, districts),
			"price_range": pickWeighted(rng, priceRanges, []float64{0.35, 0.45, 0.2}),
		}, map[string][]string{"roast": rs}); err != nil {
			return nil, err
		}
	}

	ratings, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "value", Scale: 5},
	)
	if err != nil {
		return nil, err
	}
	bias := newBiasModel(rand.New(rand.NewSource(cfg.seed()+37)), 0.6)
	cfg.apply(bias)
	if err := fillRatings(rng, bias, reviewers, items, ratings, nR, 1); err != nil {
		return nil, err
	}

	db := dataset.NewDB("Demo", reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}

// Digest renders a byte-stable FNV-1a fingerprint of a frozen database's
// generated content: the schema (attribute names and kinds), every
// entity's attribute values in row order, the rating dimensions, and
// every rating record's reviewer, item, and per-dimension scores. Two
// databases digest equally iff the generator produced identical data, so
// pinning the digest of each generator's default seed catches platform or
// toolchain drift in math/rand or float handling before it can corrupt
// the golden exploration traces built on top of the generated data.
func Digest(db *dataset.DB) string {
	h := fnv.New64a()
	write := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
	}
	write("db:%s\x00", db.Name)
	for _, t := range []*dataset.EntityTable{db.Reviewers, db.Items} {
		write("table:%s rows:%d\x00", t.Name, t.Len())
		for a := 0; a < t.Schema.Len(); a++ {
			attr := t.Schema.At(a)
			write("attr:%s kind:%d\x00", attr.Name, attr.Kind)
		}
		for row := 0; row < t.Len(); row++ {
			write("row:%d\x00", row)
			for a := 0; a < t.Schema.Len(); a++ {
				switch t.Schema.At(a).Kind {
				case dataset.Atomic:
					write("%d,", t.AtomicValue(a, row))
				case dataset.MultiValued:
					for _, v := range t.MultiValues(a, row) {
						write("%d,", v)
					}
					write(";")
				}
			}
		}
	}
	write("ratings:%d\x00", db.Ratings.Len())
	for _, dim := range db.Ratings.Dimensions {
		write("dim:%s scale:%d\x00", dim.Name, dim.Scale)
	}
	for r := 0; r < db.Ratings.Len(); r++ {
		write("%d:%d", db.Ratings.Reviewer[r], db.Ratings.Item[r])
		for d := range db.Ratings.Dimensions {
			write(",%d", db.Ratings.Scores[d][r])
		}
		write(";")
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
