// Package gen builds the synthetic subjective databases this reproduction
// uses in place of the paper's MovieLens-100K, Yelp, and Hotel-Reviews
// datasets (§5.1, Table 2). The generators reproduce the published schema
// statistics — attribute counts, maximum value cardinalities, rating
// dimension counts, and |R|/|U|/|I| — and generate ratings from a latent
// model with per-(attribute,value,dimension) biases, so subgroups genuinely
// differ in their rating distributions the way real populations do.
//
// The package also implements the paper's two evaluation workloads:
// irregular-group planting for Scenario I and insight planting for
// Scenario II, both with ground truth for the simulated user study.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// Config controls generation. The zero value generates paper-sized data
// with seed 1.
type Config struct {
	// Seed drives the deterministic PRNG; 0 means 1.
	Seed int64
	// Scale multiplies entity and record counts; 0 means 1.0 (paper size).
	// Tests use small scales for speed.
	Scale float64
	// ForcedBiases pins latent rating biases before generation; insight
	// planting (Scenario II) uses this to make specific subgroups rate
	// specific dimensions at the extremes.
	ForcedBiases []ForcedBias
}

// ForcedBias pins the latent bias of one (side, attribute, value,
// dimension) combination.
type ForcedBias struct {
	Side  query.Side
	Attr  string
	Value string
	Dim   int
	Bias  float64
}

// apply installs the forced biases into a model.
func (c Config) apply(b *biasModel) {
	for _, fb := range c.ForcedBiases {
		b.force(fb.Side, fb.Attr, fb.Value, fb.Dim, fb.Bias)
	}
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaleN applies the scale factor with a floor so tiny scales keep the
// schema exercised.
func scaleN(n int, scale float64, floor int) int {
	v := int(math.Round(float64(n) * scale))
	if v < floor {
		v = floor
	}
	return v
}

// biasModel assigns a latent rating bias to every (side, attribute, value,
// dimension) combination. Summed over an entity's attribute values, it
// shifts that entity's scores, producing subgroup-dependent distributions.
type biasModel struct {
	rng    *rand.Rand
	biases map[string]float64
	spread float64
}

func newBiasModel(rng *rand.Rand, spread float64) *biasModel {
	return &biasModel{rng: rng, biases: make(map[string]float64), spread: spread}
}

func biasKey(side query.Side, attr, value string, dim int) string {
	return fmt.Sprintf("%d\x00%s\x00%s\x00%d", side, attr, value, dim)
}

// of returns (memoized) the bias of one attribute value for one dimension.
func (b *biasModel) of(side query.Side, attr, value string, dim int) float64 {
	k := biasKey(side, attr, value, dim)
	if v, ok := b.biases[k]; ok {
		return v
	}
	v := (b.rng.Float64()*2 - 1) * b.spread
	b.biases[k] = v
	return v
}

// force pins a bias (used by insight planting).
func (b *biasModel) force(side query.Side, attr, value string, dim int, bias float64) {
	b.biases[biasKey(side, attr, value, dim)] = bias
}

// entityBias sums the biases of an entity's attribute values for one
// dimension, averaging so wide schemas do not saturate the scale.
func (b *biasModel) entityBias(side query.Side, t *dataset.EntityTable, row, dim int) float64 {
	sum, n := 0.0, 0
	for a := 0; a < t.Schema.Len(); a++ {
		attr := t.Schema.At(a)
		switch attr.Kind {
		case dataset.Atomic:
			v := t.AtomicValue(a, row)
			if v == dataset.MissingValue {
				continue
			}
			sum += b.of(side, attr.Name, t.Dict(a).Value(v), dim)
			n++
		case dataset.MultiValued:
			for _, v := range t.MultiValues(a, row) {
				sum += b.of(side, attr.Name, t.Dict(a).Value(v), dim)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	// Scale up so group effects are visible against noise.
	return 2.2 * sum / float64(n)
}

// score draws one rating on {1..scale} around a center with the summed
// entity biases and Gaussian noise.
func score(rng *rand.Rand, scale int, center float64) dataset.Score {
	v := center + rng.NormFloat64()*0.9
	s := int(math.Round(v))
	if s < 1 {
		s = 1
	}
	if s > scale {
		s = scale
	}
	return dataset.Score(s)
}

// pick chooses one value uniformly.
func pick(rng *rand.Rand, values []string) string {
	return values[rng.Intn(len(values))]
}

// pickWeighted chooses a value with the given relative weights.
func pickWeighted(rng *rand.Rand, values []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return values[i]
		}
	}
	return values[len(values)-1]
}

// zipfish returns a mildly skewed positive count with the given mean,
// approximating the long-tailed activity distributions of rating datasets.
func zipfish(rng *rand.Rand, mean float64) int {
	// Exponential with the target mean, floored at 1.
	v := int(rng.ExpFloat64() * mean)
	if v < 1 {
		v = 1
	}
	return v
}

// seq generates labels prefix1..prefixN.
func seq(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}

// years generates consecutive year labels.
func years(from, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", from+i)
	}
	return out
}
