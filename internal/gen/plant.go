package gen

import (
	"fmt"
	"math/rand"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// IrregularGroup is the Scenario I workload unit (§5.2): a reviewer or item
// group described by two or three attribute-value pairs, whose rating
// records for one dimension have all been set to the minimal value 1.
type IrregularGroup struct {
	Side      query.Side
	Selectors []query.Selector
	Dim       int
	// NumEntities and NumRecords report the planted blast radius.
	NumEntities int
	NumRecords  int
}

// Description returns the group's conjunctive description.
func (g IrregularGroup) Description() query.Description {
	return query.MustDescription(g.Selectors...)
}

func (g IrregularGroup) String() string {
	return fmt.Sprintf("irregular %s group %s on dim %d (%d entities, %d records)",
		g.Side, g.Description(), g.Dim, g.NumEntities, g.NumRecords)
}

// PlantIrregularGroups mutates the database to contain count irregular
// groups per side (reviewer and item), each described by 2-3 uniformly
// chosen attribute-value pairs covering at least minEntities entities, as
// in the paper's Scenario I setup (≥5 reviewers or items per group). To
// keep the task realistic the group is also bounded above at 4×min (a
// group spanning a large share of the database would be unmissable and
// distort every aggregate). The database must be frozen. Returns the
// ground truth.
func PlantIrregularGroups(db *dataset.DB, seed int64, perSide, minEntities int) ([]IrregularGroup, error) {
	if !db.Frozen() {
		return nil, fmt.Errorf("gen: database must be frozen before planting")
	}
	if minEntities <= 0 {
		minEntities = 5
	}
	rng := rand.New(rand.NewSource(seed))
	var out []IrregularGroup
	for _, side := range []query.Side{query.ReviewerSide, query.ItemSide} {
		t := db.Reviewers
		if side == query.ItemSide {
			t = db.Items
		}
		// Cap the group at 4×min or 4% of the table, whichever is larger,
		// so planted groups stay findable but not dominant on tables of
		// any cardinality; additionally require a minimum share of the
		// rating records (an irregular group owning a handful of records
		// in a 200K-record database is undetectable by any method, human
		// or otherwise).
		maxEntities := 4 * minEntities
		if rel := t.Len() / 25; rel > maxEntities {
			maxEntities = rel
		}
		minRecords := db.Ratings.Len() / 150
		if minRecords < 10 {
			minRecords = 10
		}
		for g := 0; g < perSide; g++ {
			ig, err := plantOne(db, rng, side, minEntities, maxEntities, minRecords)
			if err != nil {
				return out, err
			}
			out = append(out, ig)
		}
	}
	return out, nil
}

func plantOne(db *dataset.DB, rng *rand.Rand, side query.Side, minEntities, maxEntities, minRecords int) (IrregularGroup, error) {
	var t *dataset.EntityTable
	if side == query.ReviewerSide {
		t = db.Reviewers
	} else {
		t = db.Items
	}
	// Try random 2-3 pair descriptions until one covers enough entities
	// with at least one record. Relax to 2 pairs after repeated failures.
	const maxTries = 4000
	for try := 0; try < maxTries; try++ {
		nPairs := 2 + rng.Intn(2)
		if try > maxTries/2 {
			nPairs = 2
		}
		attrs := rng.Perm(t.Schema.Len())
		if len(attrs) < nPairs {
			return IrregularGroup{}, fmt.Errorf("gen: %s has %d attributes, need %d", side, len(attrs), nPairs)
		}
		sels := make([]query.Selector, 0, nPairs)
		// Anchor on a random entity so the conjunction is satisfiable.
		row := rng.Intn(t.Len())
		ok := true
		for _, a := range attrs[:nPairs] {
			var value string
			switch t.Schema.At(a).Kind {
			case dataset.Atomic:
				v := t.AtomicValue(a, row)
				if v == dataset.MissingValue {
					ok = false
				} else {
					value = t.Dict(a).Value(v)
				}
			case dataset.MultiValued:
				vs := t.MultiValues(a, row)
				if len(vs) == 0 {
					ok = false
				} else {
					value = t.Dict(a).Value(vs[rng.Intn(len(vs))])
				}
			}
			if !ok {
				break
			}
			sels = append(sels, query.Selector{Side: side, Attr: t.Schema.At(a).Name, Value: value})
		}
		if !ok {
			continue
		}
		members := matchingRows(t, sels)
		if len(members) < minEntities || len(members) > maxEntities {
			continue
		}
		// Count records before mutating; skip undetectably small groups.
		records := 0
		for _, row := range members {
			if side == query.ReviewerSide {
				records += len(db.RecordsOfReviewer(row))
			} else {
				records += len(db.RecordsOfItem(row))
			}
		}
		if records < minRecords {
			if try > 3*maxTries/4 {
				// Relax on stubborn schemas rather than fail.
				if records == 0 {
					continue
				}
			} else {
				continue
			}
		}
		dim := rng.Intn(len(db.Ratings.Dimensions))
		for _, row := range members {
			var recs []int32
			if side == query.ReviewerSide {
				recs = db.RecordsOfReviewer(row)
			} else {
				recs = db.RecordsOfItem(row)
			}
			for _, r := range recs {
				db.Ratings.Scores[dim][r] = 1
			}
		}
		return IrregularGroup{
			Side: side, Selectors: sels, Dim: dim,
			NumEntities: len(members), NumRecords: records,
		}, nil
	}
	return IrregularGroup{}, fmt.Errorf("gen: no %s group with ≥%d entities found after %d tries",
		side, minEntities, maxTries)
}

// matchingRows scans the table for rows satisfying all selectors.
func matchingRows(t *dataset.EntityTable, sels []query.Selector) []int {
	var out []int
rows:
	for row := 0; row < t.Len(); row++ {
		for _, s := range sels {
			a := t.Schema.Index(s.Attr)
			v, ok := t.Dict(a).Lookup(s.Value)
			if !ok || !t.HasValue(a, row, v) {
				continue rows
			}
		}
		out = append(out, row)
	}
	return out
}

// Insight is the Scenario II workload unit: a verifiable fact of the form
// "among the values of Attr, Value has the extreme average score on
// dimension Dim" — the shape of the insights the paper drew from Kaggle EDA
// notebooks (e.g. "programmers gave the lowest overall ratings").
type Insight struct {
	ID        string
	Side      query.Side
	Attr      string
	Value     string
	Dim       int
	Lowest    bool // extreme direction; false means highest
	Statement string
}

func (in Insight) String() string { return fmt.Sprintf("%s: %s", in.ID, in.Statement) }

// ForcedBias returns the generation-time bias that plants this insight.
// The magnitude is chosen so that, after the generator's per-attribute
// averaging, the planted value shifts its subgroup's mean by roughly a full
// rating point — a clear extreme bar, as the Kaggle-notebook insights the
// paper uses are clear-cut facts.
func (in Insight) ForcedBias() ForcedBias {
	b := 4.0
	if in.Lowest {
		b = -4.0
	}
	return ForcedBias{Side: in.Side, Attr: in.Attr, Value: in.Value, Dim: in.Dim, Bias: b}
}

// MovielensInsights are the five insights planted in the Movielens
// generator for Scenario II.
func MovielensInsights() []Insight {
	return []Insight{
		{ID: "ML-1", Side: query.ReviewerSide, Attr: "occupation", Value: "programmer", Dim: 0, Lowest: true,
			Statement: "programmers give the lowest overall ratings among occupations"},
		{ID: "ML-2", Side: query.ItemSide, Attr: "genre", Value: "film-noir", Dim: 0, Lowest: false,
			Statement: "film-noir is the highest-rated genre"},
		{ID: "ML-3", Side: query.ReviewerSide, Attr: "age_group", Value: "senior", Dim: 0, Lowest: false,
			Statement: "seniors give the highest overall ratings among age groups"},
		{ID: "ML-4", Side: query.ItemSide, Attr: "decade", Value: "1970s", Dim: 0, Lowest: false,
			Statement: "1970s movies are rated highest among decades"},
		{ID: "ML-5", Side: query.ReviewerSide, Attr: "state", Value: "MN", Dim: 0, Lowest: true,
			Statement: "reviewers from MN give the lowest overall ratings among states"},
	}
}

// YelpInsights are the five insights planted in the Yelp generator.
func YelpInsights() []Insight {
	return []Insight{
		{ID: "YP-1", Side: query.ItemSide, Attr: "neighborhood", Value: "Williamsburg", Dim: 1, Lowest: false,
			Statement: "Williamsburg restaurants get the highest food ratings among neighborhoods"},
		{ID: "YP-2", Side: query.ReviewerSide, Attr: "age_group", Value: "young", Dim: 3, Lowest: true,
			Statement: "young reviewers give the lowest ambiance ratings among age groups"},
		{ID: "YP-3", Side: query.ItemSide, Attr: "cuisine", Value: "japanese", Dim: 2, Lowest: false,
			Statement: "Japanese restaurants get the highest service ratings among cuisines"},
		{ID: "YP-4", Side: query.ReviewerSide, Attr: "occupation", Value: "programmer", Dim: 0, Lowest: true,
			Statement: "programmers give the lowest overall ratings among occupations"},
		{ID: "YP-5", Side: query.ItemSide, Attr: "price_range", Value: "$$$$", Dim: 2, Lowest: false,
			Statement: "$$$$ restaurants get the highest service ratings among price ranges"},
	}
}

// InsightBiases converts a set of insights into the forced generation
// biases to pass in Config.ForcedBiases.
func InsightBiases(insights []Insight) []ForcedBias {
	out := make([]ForcedBias, len(insights))
	for i, in := range insights {
		out[i] = in.ForcedBias()
	}
	return out
}

// VerifyInsight checks an insight holds in the generated database: among
// the values of its attribute with at least minRecords records, its value
// has the extreme mean score on its dimension.
func VerifyInsight(db *dataset.DB, in Insight, minRecords int) (bool, error) {
	var t *dataset.EntityTable
	var rowOf []int32
	if in.Side == query.ReviewerSide {
		t = db.Reviewers
		rowOf = db.Ratings.Reviewer
	} else {
		t = db.Items
		rowOf = db.Ratings.Item
	}
	a := t.Schema.Index(in.Attr)
	if a < 0 {
		return false, fmt.Errorf("gen: %s has no attribute %q", in.Side, in.Attr)
	}
	sums := make(map[dataset.ValueID]float64)
	counts := make(map[dataset.ValueID]int)
	kind := t.Schema.At(a).Kind
	for r := 0; r < db.Ratings.Len(); r++ {
		s := db.Ratings.Scores[in.Dim][r]
		if s == 0 {
			continue
		}
		row := int(rowOf[r])
		switch kind {
		case dataset.Atomic:
			v := t.AtomicValue(a, row)
			if v != dataset.MissingValue {
				sums[v] += float64(s)
				counts[v]++
			}
		case dataset.MultiValued:
			for _, v := range t.MultiValues(a, row) {
				sums[v] += float64(s)
				counts[v]++
			}
		}
	}
	target, ok := t.Dict(a).Lookup(in.Value)
	if !ok || counts[target] < minRecords {
		return false, nil
	}
	targetMean := sums[target] / float64(counts[target])
	for v, n := range counts {
		if v == target || n < minRecords {
			continue
		}
		mean := sums[v] / float64(n)
		if in.Lowest && mean <= targetMean {
			return false, nil
		}
		if !in.Lowest && mean >= targetMean {
			return false, nil
		}
	}
	return true, nil
}
