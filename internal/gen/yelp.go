package gen

import (
	"fmt"
	"math/rand"

	"subdex/internal/dataset"
)

// Yelp generates a Yelp-restaurant-shaped database (Table 2 row 2): 150,318
// reviewers, 93 restaurants, 200,500 rating records with 4 rating
// dimensions (overall plus the food/service/ambiance dimensions the paper
// extracted from review text), 24 objective attributes in total, maximum
// value cardinality 13.
func Yelp(cfg Config) (*dataset.DB, error) {
	rng := rand.New(rand.NewSource(cfg.seed() + 100))
	s := cfg.scale()

	nU := scaleN(150_318, s, 60)
	nI := scaleN(93, s, 12)
	nR := scaleN(200_500, s, 500)

	reviewerSchema := dataset.MustSchema(
		dataset.Attribute{Name: "gender"},
		dataset.Attribute{Name: "age_group"},
		dataset.Attribute{Name: "occupation"},
		dataset.Attribute{Name: "state"},
		dataset.Attribute{Name: "city"},
		dataset.Attribute{Name: "income_bracket"},
		dataset.Attribute{Name: "dining_frequency"},
		dataset.Attribute{Name: "membership"},
		dataset.Attribute{Name: "device"},
		dataset.Attribute{Name: "signup_year"},
		dataset.Attribute{Name: "review_count_class"},
		dataset.Attribute{Name: "social_activity"},
	)
	itemSchema := dataset.MustSchema(
		dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
		dataset.Attribute{Name: "neighborhood"},
		dataset.Attribute{Name: "price_range"},
		dataset.Attribute{Name: "noise_level"},
		dataset.Attribute{Name: "parking"},
		dataset.Attribute{Name: "reservations"},
		dataset.Attribute{Name: "outdoor_seating"},
		dataset.Attribute{Name: "alcohol"},
		dataset.Attribute{Name: "wifi"},
		dataset.Attribute{Name: "good_for_groups"},
		dataset.Attribute{Name: "attire"},
		dataset.Attribute{Name: "open_since"},
	)

	genders := []string{"male", "female", "unspecified"}
	ageGroups := []string{"teen", "young", "adult", "middle_aged", "senior"}
	occupations := []string{
		"student", "programmer", "teacher", "nurse", "lawyer", "chef",
		"designer", "manager", "driver", "artist", "accountant", "retired", "other",
	} // 13 values: the Table 2 max cardinality
	states := []string{"NY", "NJ", "CT", "PA", "MA"}
	cities := []string{"NYC", "Brooklyn", "Jersey_City", "Hoboken", "Yonkers", "Newark"}
	incomes := []string{"low", "lower_middle", "middle", "upper_middle", "high"}
	frequencies := []string{"rarely", "monthly", "weekly", "several_weekly", "daily"}
	memberships := []string{"none", "basic", "elite"}
	devices := []string{"ios", "android", "web"}
	signupYears := years(2010, 11)
	reviewCounts := []string{"1-5", "6-20", "21-100", "100+"}
	socialLevels := []string{"lurker", "casual", "active", "influencer"}

	cuisines := []string{
		"italian", "japanese", "mexican", "chinese", "american", "indian",
		"thai", "french", "korean", "mediterranean", "vegan", "bbq", "seafood",
	} // 13 values
	neighborhoods := []string{
		"Williamsburg", "SoHo", "Kips_Bay", "Tribeca", "Chelsea", "Midtown",
		"Harlem", "Astoria", "East_Village", "Upper_West", "Financial", "Bushwick",
	}
	priceRanges := []string{"$", "$$", "$$$", "$$$$"}
	noiseLevels := []string{"quiet", "average", "loud", "very_loud"}
	yesNo := []string{"yes", "no"}
	alcohol := []string{"none", "beer_wine", "full_bar"}
	wifi := []string{"free", "paid", "no"}
	attires := []string{"casual", "dressy", "formal"}
	openSince := years(2005, 13)

	reviewers := dataset.NewEntityTable("reviewers", reviewerSchema)
	for u := 0; u < nU; u++ {
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u+1), map[string]string{
			"gender":             pickWeighted(rng, genders, []float64{0.42, 0.42, 0.16}),
			"age_group":          pickWeighted(rng, ageGroups, []float64{0.08, 0.34, 0.28, 0.2, 0.1}),
			"occupation":         pick(rng, occupations),
			"state":              pickWeighted(rng, states, []float64{0.6, 0.15, 0.1, 0.1, 0.05}),
			"city":               pickWeighted(rng, cities, []float64{0.5, 0.2, 0.1, 0.08, 0.07, 0.05}),
			"income_bracket":     pick(rng, incomes),
			"dining_frequency":   pick(rng, frequencies),
			"membership":         pickWeighted(rng, memberships, []float64{0.7, 0.25, 0.05}),
			"device":             pick(rng, devices),
			"signup_year":        pick(rng, signupYears),
			"review_count_class": pickWeighted(rng, reviewCounts, []float64{0.5, 0.3, 0.15, 0.05}),
			"social_activity":    pick(rng, socialLevels),
		}, nil); err != nil {
			return nil, err
		}
	}

	items := dataset.NewEntityTable("items", itemSchema)
	for i := 0; i < nI; i++ {
		nCuisine := 1 + rng.Intn(2)
		cs := make([]string, 0, nCuisine)
		seen := map[string]bool{}
		for len(cs) < nCuisine {
			c := pick(rng, cuisines)
			if !seen[c] {
				seen[c] = true
				cs = append(cs, c)
			}
		}
		if _, err := items.AppendRow(fmt.Sprintf("r%d", i+1), map[string]string{
			"neighborhood":    pick(rng, neighborhoods),
			"price_range":     pickWeighted(rng, priceRanges, []float64{0.2, 0.45, 0.25, 0.1}),
			"noise_level":     pick(rng, noiseLevels),
			"parking":         pick(rng, yesNo),
			"reservations":    pick(rng, yesNo),
			"outdoor_seating": pick(rng, yesNo),
			"alcohol":         pick(rng, alcohol),
			"wifi":            pick(rng, wifi),
			"good_for_groups": pick(rng, yesNo),
			"attire":          pickWeighted(rng, attires, []float64{0.7, 0.25, 0.05}),
			"open_since":      pick(rng, openSince),
		}, map[string][]string{"cuisine": cs}); err != nil {
			return nil, err
		}
	}

	ratings, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "food", Scale: 5},
		dataset.Dimension{Name: "service", Scale: 5},
		dataset.Dimension{Name: "ambiance", Scale: 5},
	)
	if err != nil {
		return nil, err
	}
	bias := newBiasModel(rand.New(rand.NewSource(cfg.seed()+17)), 0.6)
	cfg.apply(bias)
	if err := fillRatings(rng, bias, reviewers, items, ratings, nR, 1); err != nil {
		return nil, err
	}

	db := dataset.NewDB("Yelp", reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}
