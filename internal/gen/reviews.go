package gen

import (
	"math/rand"
	"sort"
	"strings"
)

// Review text generation for the sentiment-extraction pipeline: given
// latent per-dimension scores, produce free text whose phrasing encodes
// them, so the VADER-style extractor recovers ratings that correlate with
// the latent truth — the same role real Yelp review text played for the
// paper.

// phrase templates per dimension keyword; {adj} is replaced by a
// sentiment-bearing adjective matched to the latent score.
var reviewTemplates = map[string][]string{
	"food": {
		"the food was {adj}",
		"we found the dishes truly {adj}",
		"every meal tasted {adj} to us",
		"the menu offered {adj} flavor",
	},
	"service": {
		"the service was {adj}",
		"our waiter was {adj} all evening",
		"the staff seemed {adj} throughout",
		"the server was {adj} with our orders",
	},
	"ambiance": {
		"the ambiance felt {adj}",
		"the atmosphere was {adj}",
		"the decor looked {adj}",
		"an overall {adj} vibe in the interior",
	},
	"cleanliness": {
		"the housekeeping was {adj}",
		"cleanliness of the room was {adj}",
	},
	"comfort": {
		"the bed was {adj}",
		"comfort in the room felt {adj}",
	},
}

// adjectivesByScore maps a 1..5 latent score to adjective pools whose
// lexicon valences land the extracted compound in the right band.
var adjectivesByScore = map[int][]string{
	1: {"terrible", "horrible", "awful", "disgusting", "dreadful", "abysmal"},
	2: {"bad", "poor", "disappointing", "mediocre", "bland"},
	// Latent 3 uses neutral words outside the sentiment lexicon: a zero
	// compound maps exactly to the scale midpoint.
	3: {"okay", "average", "ordinary"},
	4: {"good", "nice", "pleasant", "tasty", "friendly", "comfortable"},
	5: {"amazing", "excellent", "outstanding", "fantastic", "wonderful", "perfect"},
}

var fillerSentences = []string{
	"We visited on a rainy Tuesday.",
	"Parking nearby took a while to find.",
	"My cousin recommended this place last month.",
	"We ordered two appetizers and a dessert.",
	"The bill arrived quickly at the end.",
	"It was busier than we expected for a weekday.",
}

// ReviewText composes a free-text review whose per-dimension phrasing
// encodes the given latent scores (dimension name → score in 1..5).
// Dimensions without a template are skipped.
func ReviewText(rng *rand.Rand, scores map[string]int) string {
	var parts []string
	parts = append(parts, fillerSentences[rng.Intn(len(fillerSentences))])
	// Iterate dimensions in sorted order: ranging the map directly would
	// consume RNG draws in map order, making the "seeded" text differ
	// from run to run (a real flake in the sentiment monotonicity test).
	dims := make([]string, 0, len(scores))
	for d := range scores {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	for _, dim := range dims {
		sc := scores[dim]
		templates, ok := reviewTemplates[dim]
		if !ok {
			continue
		}
		if sc < 1 {
			sc = 1
		}
		if sc > 5 {
			sc = 5
		}
		adjs := adjectivesByScore[sc]
		t := templates[rng.Intn(len(templates))]
		sentence := strings.ReplaceAll(t, "{adj}", adjs[rng.Intn(len(adjs))])
		// Occasionally intensify, the way real reviewers do.
		if rng.Float64() < 0.3 {
			sentence = strings.Replace(sentence, "was ", "was really ", 1)
		}
		parts = append(parts, upperFirst(sentence)+".")
	}
	parts = append(parts, fillerSentences[rng.Intn(len(fillerSentences))])
	return strings.Join(parts, " ")
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// ReviewCorpus pairs generated review text with its latent ground truth.
type ReviewCorpus struct {
	Texts  []string
	Truth  []map[string]int
	Scales int
}

// GenerateReviews produces n reviews over the given dimensions with
// uniformly drawn latent scores.
func GenerateReviews(seed int64, n int, dims []string) *ReviewCorpus {
	rng := rand.New(rand.NewSource(seed))
	c := &ReviewCorpus{Scales: 5}
	for i := 0; i < n; i++ {
		truth := make(map[string]int, len(dims))
		for _, d := range dims {
			truth[d] = 1 + rng.Intn(5)
		}
		c.Texts = append(c.Texts, ReviewText(rng, truth))
		c.Truth = append(c.Truth, truth)
	}
	return c
}
