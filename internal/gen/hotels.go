package gen

import (
	"fmt"
	"math/rand"

	"subdex/internal/dataset"
)

// Hotels generates a Hotel-Reviews-shaped database (Table 2 row 3): 15,493
// reviewers, 879 hotels, 35,912 records with 4 rating dimensions (overall
// plus the cleanliness/food/comfort dimensions the paper extracted from
// review text), 8 objective attributes in total, maximum value cardinality
// 62 (hotel city).
func Hotels(cfg Config) (*dataset.DB, error) {
	rng := rand.New(rand.NewSource(cfg.seed() + 200))
	s := cfg.scale()

	nU := scaleN(15_493, s, 40)
	nI := scaleN(879, s, 25)
	nR := scaleN(35_912, s, 300)

	reviewerSchema := dataset.MustSchema(
		dataset.Attribute{Name: "traveler_type"},
		dataset.Attribute{Name: "age_group"},
		dataset.Attribute{Name: "home_country"},
		dataset.Attribute{Name: "loyalty_tier"},
	)
	itemSchema := dataset.MustSchema(
		dataset.Attribute{Name: "city"},
		dataset.Attribute{Name: "star_class"},
		dataset.Attribute{Name: "chain"},
		dataset.Attribute{Name: "amenity", Kind: dataset.MultiValued},
	)

	travelerTypes := []string{"business", "couple", "family", "solo", "group"}
	ageGroups := []string{"young", "adult", "middle_aged", "senior"}
	countries := []string{"US", "UK", "DE", "FR", "CA", "AU", "JP", "BR", "IN", "MX"}
	tiers := []string{"none", "silver", "gold", "platinum"}

	hotelCities := seq("hcity_", 62) // 62 values: the Table 2 max cardinality
	starClasses := []string{"1", "2", "3", "4", "5"}
	chains := []string{"independent", "northstar", "bluepeak", "grandline", "resthaven", "citynest"}
	amenities := []string{"pool", "spa", "gym", "breakfast", "parking", "wifi", "bar", "shuttle"}

	reviewers := dataset.NewEntityTable("reviewers", reviewerSchema)
	for u := 0; u < nU; u++ {
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u+1), map[string]string{
			"traveler_type": pick(rng, travelerTypes),
			"age_group":     pickWeighted(rng, ageGroups, []float64{0.25, 0.3, 0.28, 0.17}),
			"home_country":  pickWeighted(rng, countries, []float64{0.4, 0.12, 0.1, 0.08, 0.08, 0.06, 0.05, 0.04, 0.04, 0.03}),
			"loyalty_tier":  pickWeighted(rng, tiers, []float64{0.55, 0.25, 0.15, 0.05}),
		}, nil); err != nil {
			return nil, err
		}
	}

	items := dataset.NewEntityTable("items", itemSchema)
	for i := 0; i < nI; i++ {
		nAmen := 2 + rng.Intn(4)
		as := make([]string, 0, nAmen)
		seen := map[string]bool{}
		for len(as) < nAmen {
			a := pick(rng, amenities)
			if !seen[a] {
				seen[a] = true
				as = append(as, a)
			}
		}
		if _, err := items.AppendRow(fmt.Sprintf("h%d", i+1), map[string]string{
			"city":       pick(rng, hotelCities),
			"star_class": pickWeighted(rng, starClasses, []float64{0.05, 0.15, 0.35, 0.3, 0.15}),
			"chain":      pickWeighted(rng, chains, []float64{0.4, 0.15, 0.12, 0.12, 0.11, 0.1}),
		}, map[string][]string{"amenity": as}); err != nil {
			return nil, err
		}
	}

	ratings, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "cleanliness", Scale: 5},
		dataset.Dimension{Name: "food", Scale: 5},
		dataset.Dimension{Name: "comfort", Scale: 5},
	)
	if err != nil {
		return nil, err
	}
	bias := newBiasModel(rand.New(rand.NewSource(cfg.seed()+27)), 0.6)
	cfg.apply(bias)
	if err := fillRatings(rng, bias, reviewers, items, ratings, nR, 1); err != nil {
		return nil, err
	}

	db := dataset.NewDB("HotelReviews", reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}
