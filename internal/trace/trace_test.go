package trace

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/gen"
	"subdex/internal/query"
)

func traceSession(t *testing.T) (*core.Explorer, *core.Session) {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 300
	cfg.Limits.MaxCandidates = 15
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(ex, core.RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Recommendations) == 0 {
			break
		}
		if err := sess.ApplyRecommendation(0); err != nil {
			t.Fatal(err)
		}
	}
	return ex, sess
}

func TestFromSession(t *testing.T) {
	_, sess := traceSession(t)
	tr := FromSession(sess)
	if tr.Database != "Yelp" || tr.Mode != "Recommendation-Powered" {
		t.Fatalf("trace metadata: %q/%q", tr.Database, tr.Mode)
	}
	if len(tr.Events) != sess.NumSteps() {
		t.Fatalf("events = %d, steps = %d", len(tr.Events), sess.NumSteps())
	}
	for i, ev := range tr.Events {
		if ev.Step != i+1 {
			t.Errorf("event %d has step %d", i, ev.Step)
		}
		if len(ev.Maps) == 0 || len(ev.Maps) != len(ev.Utilities) {
			t.Errorf("event %d display incomplete: %v", i, ev)
		}
		if i < len(tr.Events)-1 && ev.ChosenOp == "" {
			t.Errorf("event %d missing chosen op", i)
		}
	}
	if last := tr.Events[len(tr.Events)-1]; last.ChosenOp != "" {
		t.Error("final event must have no chosen op")
	}
}

// TestFromSessionTelemetry checks that persisted session logs carry the
// per-step telemetry (durations, candidate and pruning counters) and
// that it survives the JSONL round trip.
func TestFromSessionTelemetry(t *testing.T) {
	_, sess := traceSession(t)
	tr := FromSession(sess)
	for i, ev := range tr.Events {
		if ev.DurationMS <= 0 {
			t.Errorf("event %d: DurationMS = %v, want > 0", i, ev.DurationMS)
		}
		if ev.RecommendationMS <= 0 {
			t.Errorf("event %d: RecommendationMS = %v, want > 0 (rp mode)", i, ev.RecommendationMS)
		}
		if ev.Considered <= 0 {
			t.Errorf("event %d: Considered = %d, want > 0", i, ev.Considered)
		}
		if ev.PrunedCI < 0 || ev.PrunedMAB < 0 {
			t.Errorf("event %d: negative prune counts", i)
		}
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		a, b := tr.Events[i], back.Events[i]
		if a.DurationMS != b.DurationMS || a.RecommendationMS != b.RecommendationMS ||
			a.Considered != b.Considered || a.PrunedCI != b.PrunedCI || a.PrunedMAB != b.PrunedMAB {
			t.Fatalf("event %d telemetry changed in round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, sess := traceSession(t)
	tr := FromSession(sess)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(tr.Events)+1 {
		t.Fatalf("JSONL lines = %d, want header + %d events", lines, len(tr.Events))
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Database != tr.Database || len(back.Events) != len(tr.Events) {
		t.Fatal("round trip lost data")
	}
	for i := range tr.Events {
		if back.Events[i].Selection != tr.Events[i].Selection {
			t.Fatalf("event %d selection changed", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	_, sess := traceSession(t)
	tr := FromSession(sess)
	path := filepath.Join(t.TempDir(), "session.jsonl")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatal("file round trip lost events")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": `{"version":9}` + "\n",
		"bad event":   `{"version":1}` + "\nnot json\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	ex, sess := traceSession(t)
	tr := FromSession(sess)
	// Replaying against the same engine configuration and data must
	// reproduce the recorded displays: the whole pipeline is deterministic.
	db2, err := gen.Yelp(gen.Config{Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := core.NewExplorer(db2, ex.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	mismatches, err := tr.Replay(ex2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("deterministic replay mismatched: %v", mismatches)
	}
}

func TestSeedScorer(t *testing.T) {
	ex, sess := traceSession(t)
	tr := FromSession(sess)
	scorer := &core.LogAffinityScorer{Alpha: 0.5}
	if err := tr.SeedScorer(ex, scorer); err != nil {
		t.Fatal(err)
	}
	// The scorer must now boost an operation touching a logged attribute.
	var logged query.Selector
	found := false
	for _, ev := range tr.Events {
		d, err := ex.ParseDescription(ev.Selection)
		if err != nil {
			t.Fatal(err)
		}
		if sels := d.Selectors(); len(sels) > 0 {
			logged = sels[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("trace never narrowed the selection")
	}
	op := query.Operation{Target: query.MustDescription(logged), Added: &logged}
	boosted, err := scorer.ScoreOperation(ex, op, sess.Seen())
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EquationTwoScorer{}.ScoreOperation(ex, op, sess.Seen())
	if err != nil {
		t.Fatal(err)
	}
	if boosted <= base {
		t.Fatalf("seeded scorer must boost logged attributes: %v vs %v", boosted, base)
	}
}

// TestEventDegradedRoundTrip checks that deadline-degraded steps persist
// their anytime markers through FromSession and the JSONL round trip.
func TestEventDegradedRoundTrip(t *testing.T) {
	db, err := gen.Yelp(gen.Config{Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.StepTimeout = 50 * time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 {
			<-ctx.Done()
		}
	}
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(ex, core.UserDriven, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	tr := FromSession(sess)
	if len(tr.Events) != 1 || !tr.Events[0].Degraded || tr.Events[0].RecordsProcessed <= 0 {
		t.Fatalf("degradation not persisted: %+v", tr.Events)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Events[0].Degraded || back.Events[0].RecordsProcessed != tr.Events[0].RecordsProcessed {
		t.Fatalf("degradation lost in round trip: %+v", back.Events[0])
	}
}
