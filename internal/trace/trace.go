// Package trace records exploration sessions as JSON-lines files and plays
// them back. Session logs are the raw material of the log-based next-step
// recommenders the paper positions against (Eirinaki et al. [23], Milo &
// Somech [42]) and of its own personalization remark (§5.2.2): a persisted
// trace can seed a core.LogAffinityScorer, be replayed against a new
// database version, or drive regression comparisons of exploration paths.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"subdex/internal/core"
	"subdex/internal/query"
)

// Event is one step of an exploration session.
type Event struct {
	// Step is the 1-based step number.
	Step int `json:"step"`
	// Selection is the canonical predicate of the examined rating group.
	Selection string `json:"selection"`
	// GroupSize is the number of rating records in the group.
	GroupSize int `json:"group_size"`
	// Maps lists the displayed rating maps as "side.attr/dimension".
	Maps []string `json:"maps"`
	// Utilities aligns with Maps.
	Utilities []float64 `json:"utilities"`
	// ChosenOp is the operation applied after this step ("" on the last).
	ChosenOp string `json:"chosen_op,omitempty"`
	// At is the wall-clock time the step was recorded.
	At time.Time `json:"at"`

	// Telemetry (optional, version-1 compatible): persisted session logs
	// carry the same per-step signals the live /metrics endpoint exposes,
	// so log-based recommenders and offline latency analyses see them.

	// DurationMS is the rating-map generation wall-clock time of the step
	// in milliseconds; RecommendationMS the recommendation-scoring time.
	DurationMS       float64 `json:"duration_ms,omitempty"`
	RecommendationMS float64 `json:"recommendation_ms,omitempty"`
	// Considered is the initial rating-map candidate count; PrunedCI and
	// PrunedMAB count candidates eliminated by each pruning scheme.
	Considered int `json:"considered,omitempty"`
	PrunedCI   int `json:"pruned_ci,omitempty"`
	PrunedMAB  int `json:"pruned_mab,omitempty"`
	// Degraded marks a step that was cut short by its compute deadline and
	// returned anytime results over a RecordsProcessed-record prefix of
	// the group (version-1 compatible: absent means a complete scan).
	Degraded         bool `json:"degraded,omitempty"`
	RecordsProcessed int  `json:"records_processed,omitempty"`
	// TraceID is the correlation ID the step ran under, linking the logged
	// step to its engine spans (/debug/spans?trace=) and flight-recorder
	// wide event. Deliberately excluded from golden-trace records, which
	// compare runs under different IDs.
	TraceID string `json:"trace_id,omitempty"`
}

// Trace is an ordered session log.
type Trace struct {
	// Database names the explored dataset.
	Database string `json:"database"`
	// Mode is the exploration mode the session ran in.
	Mode   string  `json:"mode"`
	Events []Event `json:"-"`
}

// FromSession builds a trace from a session's executed steps. The chosen
// operation of step i is inferred from the selection of step i+1.
func FromSession(sess *core.Session) *Trace {
	tr := &Trace{Database: sess.Ex.DB.Name, Mode: sess.Mode.String()}
	steps := sess.Steps()
	for i, st := range steps {
		ev := Event{
			Step:             i + 1,
			Selection:        st.Desc.String(),
			GroupSize:        st.GroupSize,
			At:               time.Now(),
			DurationMS:       float64(st.GenDuration.Microseconds()) / 1000,
			RecommendationMS: float64(st.RecDuration.Microseconds()) / 1000,
			Considered:       st.Considered,
			PrunedCI:         st.PrunedCI,
			PrunedMAB:        st.PrunedMAB,
			Degraded:         st.Degraded,
			RecordsProcessed: st.RecordsProcessed,
			TraceID:          st.TraceID,
		}
		for j, rm := range st.Maps {
			ev.Maps = append(ev.Maps, fmt.Sprintf("%s.%s/%s", rm.Side, rm.Attr, rm.DimName))
			ev.Utilities = append(ev.Utilities, st.Utilities[j])
		}
		if i+1 < len(steps) {
			ev.ChosenOp = steps[i+1].Desc.String()
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr
}

// header is the first JSONL line.
type header struct {
	Database string `json:"database"`
	Mode     string `json:"mode"`
	Version  int    `json:"version"`
}

// Write serializes the trace as JSON lines: a header line followed by one
// line per event.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Database: tr.Database, Mode: tr.Mode, Version: 1}); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	tr := &Trace{Database: h.Database, Mode: h.Mode}
	for line := 2; sc.Scan(); line++ {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, sc.Err()
}

// Save writes the trace to a file.
func (tr *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// SeedScorer feeds every selection of the trace into a log-affinity scorer,
// so a new session starts personalized to this history.
func (tr *Trace) SeedScorer(ex *core.Explorer, scorer *core.LogAffinityScorer) error {
	for _, ev := range tr.Events {
		d, err := ex.ParseDescription(ev.Selection)
		if err != nil {
			return fmt.Errorf("trace: step %d selection %q: %w", ev.Step, ev.Selection, err)
		}
		scorer.Observe(query.Operation{Target: d})
	}
	return nil
}

// Replay walks the trace's selections against an explorer, recomputing each
// step's display, and returns the per-step selection mismatches — empty when
// the engine still shows the same rating maps it showed when the trace was
// recorded (a regression check across engine or data changes).
func (tr *Trace) Replay(ex *core.Explorer) ([]string, error) {
	sess, err := core.NewSession(ex, core.UserDriven, query.Description{})
	if err != nil {
		return nil, err
	}
	var mismatches []string
	for _, ev := range tr.Events {
		d, err := ex.ParseDescription(ev.Selection)
		if err != nil {
			return nil, fmt.Errorf("trace: step %d: %w", ev.Step, err)
		}
		if err := sess.ApplyDescription(d); err != nil {
			return nil, fmt.Errorf("trace: step %d: %w", ev.Step, err)
		}
		st, err := sess.Step()
		if err != nil {
			return nil, fmt.Errorf("trace: step %d: %w", ev.Step, err)
		}
		got := make([]string, 0, len(st.Maps))
		for _, rm := range st.Maps {
			got = append(got, fmt.Sprintf("%s.%s/%s", rm.Side, rm.Attr, rm.DimName))
		}
		if !sameStrings(got, ev.Maps) {
			mismatches = append(mismatches,
				fmt.Sprintf("step %d: recorded %v, got %v", ev.Step, ev.Maps, got))
		}
	}
	return mismatches, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
