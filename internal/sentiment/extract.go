package sentiment

import "strings"

// Extractor derives per-dimension rating scores from free-text reviews, the
// pipeline of §5.1: "we extracted all phrases which include the word
// 'service' and a fixed window of words around it of size 5", scored each
// with VADER, and averaged.
type Extractor struct {
	Analyzer Analyzer
	// Window is the number of words kept on each side of a dimension
	// keyword (the paper uses 5). Zero selects 5.
	Window int
	// Keywords maps a rating dimension name to the words that signal it,
	// e.g. "food" → {food, dish, meal, ...}.
	Keywords map[string][]string
}

// DefaultRestaurantKeywords are the dimension triggers for the Yelp-style
// pipeline (dimensions shown relevant in the domain per Li et al. [39]).
func DefaultRestaurantKeywords() map[string][]string {
	return map[string][]string{
		"food":     {"food", "dish", "dishes", "meal", "menu", "taste", "flavor"},
		"service":  {"service", "staff", "waiter", "waitress", "server"},
		"ambiance": {"ambiance", "atmosphere", "decor", "vibe", "interior"},
	}
}

// DefaultHotelKeywords are the triggers for the Hotel-Reviews pipeline
// (cleanliness, food, comfort, per §5.1).
func DefaultHotelKeywords() map[string][]string {
	return map[string][]string{
		"cleanliness": {"clean", "cleanliness", "spotless", "dirty", "filthy", "housekeeping"},
		"food":        {"food", "breakfast", "restaurant", "meal", "buffet"},
		"comfort":     {"comfort", "comfortable", "bed", "room", "quiet", "cozy"},
	}
}

func (e *Extractor) window() int {
	if e.Window > 0 {
		return e.Window
	}
	return 5
}

// Phrase is one extracted keyword window with its sentiment.
type Phrase struct {
	Dimension string
	Words     []string
	Compound  float64
}

// Phrases extracts every keyword window from the review for every
// configured dimension.
func (e *Extractor) Phrases(review string) []Phrase {
	tokens := Tokenize(review)
	words := make([]string, len(tokens))
	for i, t := range tokens {
		words[i] = t.Lower
	}
	var out []Phrase
	w := e.window()
	for dim, keys := range e.Keywords {
		keySet := make(map[string]bool, len(keys))
		for _, k := range keys {
			keySet[strings.ToLower(k)] = true
		}
		for i, word := range words {
			if !keySet[word] {
				continue
			}
			lo, hi := i-w, i+w+1
			if lo < 0 {
				lo = 0
			}
			if hi > len(tokens) {
				hi = len(tokens)
			}
			phrase := tokens[lo:hi]
			out = append(out, Phrase{
				Dimension: dim,
				Words:     words[lo:hi],
				Compound:  e.Analyzer.compoundOf(phrase, 0),
			})
		}
	}
	return out
}

// Scores averages phrase sentiments per dimension and maps them to the
// rating scale {1..m}. Dimensions with no matching phrase are reported with
// ok=false in the second return.
func (e *Extractor) Scores(review string, m int) (map[string]int, map[string]bool) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, p := range e.Phrases(review) {
		sums[p.Dimension] += p.Compound
		counts[p.Dimension]++
	}
	scores := make(map[string]int, len(e.Keywords))
	found := make(map[string]bool, len(e.Keywords))
	for dim := range e.Keywords {
		if n := counts[dim]; n > 0 {
			scores[dim] = CompoundToScale(sums[dim]/float64(n), m)
			found[dim] = true
		}
	}
	return scores, found
}
