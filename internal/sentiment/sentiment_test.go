package sentiment

import (
	"math/rand"
	"testing"

	"subdex/internal/gen"
	"subdex/internal/stats"
)

func TestCompoundPolarity(t *testing.T) {
	var a Analyzer
	if c := a.Compound("the food was excellent"); c <= 0 {
		t.Errorf("positive text scored %v", c)
	}
	if c := a.Compound("the food was terrible"); c >= 0 {
		t.Errorf("negative text scored %v", c)
	}
	if c := a.Compound("we ordered two appetizers"); c != 0 {
		t.Errorf("neutral text scored %v", c)
	}
}

func TestCompoundRange(t *testing.T) {
	texts := []string{
		"absolutely amazing wonderful perfect excellent!!!",
		"horrible terrible awful disgusting vile!!!",
		"",
		"fine",
	}
	var a Analyzer
	for _, tx := range texts {
		if c := a.Compound(tx); c < -1 || c > 1 {
			t.Errorf("compound out of range for %q: %v", tx, c)
		}
	}
}

func TestNegationFlips(t *testing.T) {
	var a Analyzer
	pos := a.Compound("the food was good")
	neg := a.Compound("the food was not good")
	if neg >= 0 {
		t.Errorf("negated positive should be negative, got %v", neg)
	}
	if pos <= 0 {
		t.Fatalf("baseline positive failed: %v", pos)
	}
	// Negation dampens too (|neg| < |pos|, the −0.74 factor).
	if -neg >= pos {
		t.Errorf("negation should dampen: pos=%v neg=%v", pos, neg)
	}
}

func TestBoosterIntensifies(t *testing.T) {
	var a Analyzer
	plain := a.Compound("the food was good")
	boosted := a.Compound("the food was very good")
	damped := a.Compound("the food was slightly good")
	if boosted <= plain {
		t.Errorf("booster failed: %v vs %v", boosted, plain)
	}
	if damped >= plain {
		t.Errorf("damper failed: %v vs %v", damped, plain)
	}
}

func TestCapsAndExclamation(t *testing.T) {
	var a Analyzer
	plain := a.Compound("the food was good")
	caps := a.Compound("the food was GOOD")
	bang := a.Compound("the food was good!!")
	if caps <= plain {
		t.Errorf("ALL-CAPS emphasis failed: %v vs %v", caps, plain)
	}
	if bang <= plain {
		t.Errorf("exclamation emphasis failed: %v vs %v", bang, plain)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The staff wasn't friendly, REALLY!")
	var words []string
	for _, tk := range toks {
		words = append(words, tk.Lower)
	}
	want := []string{"the", "staff", "wasn't", "friendly", "really"}
	if len(words) != len(want) {
		t.Fatalf("tokens = %v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", words, want)
		}
	}
	if !toks[4].AllCaps {
		t.Error("REALLY should be flagged ALL-CAPS")
	}
	if toks[0].AllCaps {
		t.Error("The is not ALL-CAPS")
	}
}

func TestCompoundToScale(t *testing.T) {
	if CompoundToScale(-1, 5) != 1 || CompoundToScale(1, 5) != 5 {
		t.Error("extremes must map to scale ends")
	}
	if got := CompoundToScale(0, 5); got != 3 {
		t.Errorf("neutral maps to %d, want 3", got)
	}
	if CompoundToScale(0.5, 1) != 1 {
		t.Error("degenerate scale must clamp to 1")
	}
}

func TestExtractorWindow(t *testing.T) {
	e := Extractor{Keywords: DefaultRestaurantKeywords(), Window: 2}
	phrases := e.Phrases("unrelated words here but the food was excellent indeed and more trailing words")
	if len(phrases) == 0 {
		t.Fatal("no phrase extracted")
	}
	p := phrases[0]
	if p.Dimension != "food" {
		t.Errorf("dimension = %q", p.Dimension)
	}
	if len(p.Words) > 5 { // window 2 both sides + keyword
		t.Errorf("window too wide: %v", p.Words)
	}
	if p.Compound <= 0 {
		t.Errorf("phrase sentiment = %v, want positive", p.Compound)
	}
}

func TestExtractorScores(t *testing.T) {
	e := Extractor{Keywords: DefaultRestaurantKeywords()}
	scores, found := e.Scores(
		"The food was excellent. The service was terrible. No further remarks.", 5)
	if !found["food"] || !found["service"] {
		t.Fatalf("found = %v", found)
	}
	if found["ambiance"] {
		t.Error("ambiance should be missing")
	}
	if scores["food"] <= scores["service"] {
		t.Errorf("food (%d) should outscore service (%d)", scores["food"], scores["service"])
	}
}

// TestPipelineRecoversLatentScores runs the full substitution pipeline:
// generate review text from latent scores, extract ratings, and require a
// strong monotone relationship — the property the paper's VADER pipeline
// needs for the derived food/service/ambiance dimensions to be meaningful.
func TestPipelineRecoversLatentScores(t *testing.T) {
	dims := []string{"food", "service", "ambiance"}
	corpus := gen.GenerateReviews(99, 300, dims)
	e := Extractor{Keywords: DefaultRestaurantKeywords()}

	// Mean extracted score per latent level must be strictly increasing.
	sums := map[string][6]float64{}
	counts := map[string][6]int{}
	for i, text := range corpus.Texts {
		scores, found := e.Scores(text, 5)
		for _, d := range dims {
			if !found[d] {
				continue
			}
			latent := corpus.Truth[i][d]
			s := sums[d]
			c := counts[d]
			s[latent] += float64(scores[d])
			c[latent]++
			sums[d] = s
			counts[d] = c
		}
	}
	for _, d := range dims {
		prev := 0.0
		for lvl := 1; lvl <= 5; lvl++ {
			if counts[d][lvl] == 0 {
				continue
			}
			mean := sums[d][lvl] / float64(counts[d][lvl])
			if mean < prev {
				t.Errorf("%s: extracted mean not monotone at latent %d: %v < %v", d, lvl, mean, prev)
			}
			prev = mean
		}
	}

	// Global rank correlation between latent and extracted scores must be
	// strong for the pipeline to carry the paper's derived dimensions.
	var latents, extracted []float64
	for i, text := range corpus.Texts {
		scores, found := e.Scores(text, 5)
		for _, d := range dims {
			if found[d] {
				latents = append(latents, float64(corpus.Truth[i][d]))
				extracted = append(extracted, float64(scores[d]))
			}
		}
	}
	if rho := stats.SpearmanRho(latents, extracted); rho < 0.7 {
		t.Errorf("Spearman rho = %.3f, want ≥ 0.7", rho)
	}
}

func TestReviewTextMentionsDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := gen.ReviewText(rng, map[string]int{"food": 5, "service": 1})
	e := Extractor{Keywords: DefaultRestaurantKeywords()}
	scores, found := e.Scores(text, 5)
	if !found["food"] || !found["service"] {
		t.Fatalf("generated text must mention both dimensions: %q", text)
	}
	if scores["food"] <= scores["service"] {
		t.Errorf("latent 5 vs 1 should separate: food=%d service=%d (text %q)",
			scores["food"], scores["service"], text)
	}
}

func TestLexiconNonEmpty(t *testing.T) {
	if LexiconSize() < 80 {
		t.Errorf("lexicon suspiciously small: %d", LexiconSize())
	}
	if Valence("excellent") <= 0 || Valence("terrible") >= 0 {
		t.Error("lexicon polarity broken")
	}
	if Valence("zzzz-not-a-word") != 0 {
		t.Error("unknown word must have zero valence")
	}
}

func TestHotelKeywords(t *testing.T) {
	e := Extractor{Keywords: DefaultHotelKeywords()}
	scores, found := e.Scores("The housekeeping was spotless and the bed was comfortable.", 5)
	if !found["cleanliness"] || !found["comfort"] {
		t.Fatalf("found = %v", found)
	}
	if scores["cleanliness"] < 3 || scores["comfort"] < 3 {
		t.Errorf("positive hotel review scored low: %v", scores)
	}
}
