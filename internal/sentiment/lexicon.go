// Package sentiment implements the review-to-rating extraction pipeline the
// paper uses on Yelp and Hotel reviews (§5.1): for each rating dimension
// (food, service, ambiance, ...), extract every phrase containing the
// dimension keyword with a fixed window of words around it, score each
// phrase with a VADER-style rule-based sentiment analyzer (Hutto & Gilbert
// [34]), and average the phrase sentiments into the dimension's rating
// score on the 1..m scale.
//
// The analyzer is a compact reimplementation of VADER's core rules over a
// built-in valence lexicon: booster words scale intensity, negations flip
// polarity within a window, ALL-CAPS emphasis and exclamation marks add
// intensity, and the compound score is the alpha-normalized sum.
package sentiment

// valence holds the built-in lexicon: word → valence in roughly [-4, 4],
// the scale VADER uses. The vocabulary is sized to the synthetic review
// generator but the analyzer accepts any English text.
var valence = map[string]float64{
	// strongly positive
	"amazing": 3.3, "awesome": 3.1, "excellent": 3.2, "outstanding": 3.4,
	"fantastic": 3.2, "wonderful": 3.0, "superb": 3.1, "perfect": 3.4,
	"incredible": 3.0, "exceptional": 3.2, "delicious": 3.0, "divine": 2.9,
	"flawless": 3.1, "spotless": 2.6, "stellar": 3.0, "magnificent": 3.2,

	// positive
	"good": 1.9, "great": 2.5, "nice": 1.8, "tasty": 2.1, "friendly": 2.0,
	"pleasant": 1.9, "enjoyable": 2.0, "fresh": 1.7, "clean": 1.6,
	"attentive": 1.9, "cozy": 1.7, "charming": 2.0, "lovely": 2.2,
	"helpful": 1.9, "prompt": 1.5, "warm": 1.4, "comfortable": 1.8,
	"generous": 1.8, "fine": 0.8, "decent": 1.0, "solid": 1.2,
	"recommend": 1.6, "love": 3.0, "loved": 2.9, "like": 1.5, "liked": 1.5,
	"enjoy": 1.9, "enjoyed": 1.9, "impressed": 2.2, "happy": 2.1,

	// negative
	"bad": -2.5, "poor": -2.3, "slow": -1.5, "bland": -1.8, "stale": -2.0,
	"dirty": -2.2, "rude": -2.6, "cold": -1.2, "noisy": -1.4, "cramped": -1.5,
	"mediocre": -1.3, "overpriced": -1.9, "disappointing": -2.2,
	"disappointed": -2.2, "unfriendly": -2.1, "greasy": -1.6, "soggy": -1.7,
	"dull": -1.4, "messy": -1.6, "shabby": -1.7, "unhelpful": -1.9,
	"forgettable": -1.2, "lacking": -1.3, "annoying": -1.8, "hate": -2.7,
	"hated": -2.7, "dislike": -1.6, "avoid": -1.8, "problem": -1.4,

	// strongly negative
	"terrible": -3.1, "horrible": -3.2, "awful": -3.1, "disgusting": -3.3,
	"inedible": -3.0, "atrocious": -3.3, "appalling": -3.2, "filthy": -2.9,
	"dreadful": -3.0, "abysmal": -3.2, "worst": -3.1, "unacceptable": -2.7,
	"revolting": -3.2, "vile": -3.1,
}

// boosters scale the valence of the following sentiment word. Positive
// entries intensify, negative entries dampen (VADER's "booster dictionary").
var boosters = map[string]float64{
	"very": 0.293, "really": 0.293, "extremely": 0.293, "absolutely": 0.293,
	"incredibly": 0.293, "remarkably": 0.27, "so": 0.293, "totally": 0.27,
	"utterly": 0.29, "quite": 0.18,
	"slightly": -0.293, "somewhat": -0.293, "barely": -0.293,
	"marginally": -0.27, "kinda": -0.27, "sort_of": -0.27, "a_bit": -0.25,
}

// negations flip and dampen the valence of sentiment words within the
// lookback window (VADER's negation rule with factor −0.74).
var negations = map[string]bool{
	"not": true, "no": true, "never": true, "neither": true, "nor": true,
	"isnt": true, "isn't": true, "wasnt": true, "wasn't": true,
	"arent": true, "aren't": true, "werent": true, "weren't": true,
	"dont": true, "don't": true, "didnt": true, "didn't": true,
	"cant": true, "can't": true, "couldnt": true, "couldn't": true,
	"wont": true, "won't": true, "wouldnt": true, "wouldn't": true,
	"hardly": true, "without": true, "lacks": true, "lacked": true,
}

// LexiconSize reports how many sentiment-bearing words the built-in lexicon
// carries (for documentation and tests).
func LexiconSize() int { return len(valence) }

// Valence exposes the lexicon entry for a lowercase word (0 when absent).
func Valence(word string) float64 { return valence[word] }
