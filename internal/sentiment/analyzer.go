package sentiment

import (
	"math"
	"strings"
	"unicode"
)

// Analyzer is a rule-based VADER-style sentiment scorer. The zero value is
// ready to use.
type Analyzer struct {
	// NegationFactor is the multiplier applied to a sentiment word preceded
	// by a negation (VADER uses −0.74). Zero selects the default.
	NegationFactor float64
	// Alpha is the normalization constant of the compound score (VADER
	// uses 15). Zero selects the default.
	Alpha float64
}

const (
	defaultNegationFactor = -0.74
	defaultAlpha          = 15.0
	capsBoost             = 0.733
	exclamationBoost      = 0.292
	maxExclamations       = 3
	negationLookback      = 3
)

// Compound returns the VADER-style compound sentiment of text in [-1, 1]:
// the booster/negation/caps-adjusted valence sum, alpha-normalized.
func (a *Analyzer) Compound(text string) float64 {
	tokens := Tokenize(text)
	return a.compoundOf(tokens, countExclamations(text))
}

func (a *Analyzer) negFactor() float64 {
	if a.NegationFactor != 0 {
		return a.NegationFactor
	}
	return defaultNegationFactor
}

func (a *Analyzer) alpha() float64 {
	if a.Alpha != 0 {
		return a.Alpha
	}
	return defaultAlpha
}

func (a *Analyzer) compoundOf(tokens []Token, exclamations int) float64 {
	sum := 0.0
	for i, tok := range tokens {
		v, ok := valence[tok.Lower]
		if !ok {
			continue
		}
		// Booster words in the three preceding positions scale intensity,
		// with decay by distance, per VADER.
		for back := 1; back <= 3 && i-back >= 0; back++ {
			b, isBooster := boosters[tokens[i-back].Lower]
			if !isBooster {
				continue
			}
			scale := b
			switch back {
			case 2:
				scale *= 0.95
			case 3:
				scale *= 0.9
			}
			if v > 0 {
				v += scale
			} else {
				v -= scale
			}
		}
		// Negation within the lookback window flips and dampens.
		for back := 1; back <= negationLookback && i-back >= 0; back++ {
			if negations[tokens[i-back].Lower] {
				v *= a.negFactor()
				break
			}
		}
		// ALL-CAPS emphasis.
		if tok.AllCaps {
			if v > 0 {
				v += capsBoost
			} else {
				v -= capsBoost
			}
		}
		sum += v
	}
	// Exclamation marks amplify the total, capped as in VADER.
	if exclamations > maxExclamations {
		exclamations = maxExclamations
	}
	if sum > 0 {
		sum += float64(exclamations) * exclamationBoost
	} else if sum < 0 {
		sum -= float64(exclamations) * exclamationBoost
	}
	return sum / math.Sqrt(sum*sum+a.alpha())
}

// Token is one word of the input with case information preserved for the
// ALL-CAPS rule.
type Token struct {
	Lower   string
	AllCaps bool
}

// Tokenize splits text into word tokens, lowercased, with punctuation
// stripped except intra-word apostrophes (so "didn't" survives).
func Tokenize(text string) []Token {
	var tokens []Token
	var cur strings.Builder
	letters, uppers := 0, 0
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		w := cur.String()
		tokens = append(tokens, Token{
			Lower:   strings.ToLower(w),
			AllCaps: letters >= 2 && uppers == letters,
		})
		cur.Reset()
		letters, uppers = 0, 0
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
			if unicode.IsLetter(r) {
				letters++
				if unicode.IsUpper(r) {
					uppers++
				}
			}
		case r == '\'' && cur.Len() > 0:
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

func countExclamations(text string) int {
	n := 0
	for _, r := range text {
		if r == '!' {
			n++
		}
	}
	return n
}

// CompoundToScale maps a compound sentiment in [-1,1] onto the integer
// rating scale {1..m} by uniform binning; it is the final step of the
// extraction pipeline (the paper "computed the average sentiment ... for
// each rating dimension" and rates on the dataset's scale).
func CompoundToScale(compound float64, m int) int {
	if m < 2 {
		return 1
	}
	x := (compound + 1) / 2 // → [0,1]
	s := int(x*float64(m)) + 1
	if s > m {
		s = m
	}
	if s < 1 {
		s = 1
	}
	return s
}
